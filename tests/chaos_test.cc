// End-to-end resilience: training -> bias elimination -> client queries
// under injected faults. The suite asserts the self-healing contract of
// DESIGN.md Sec. 12 — no crash, no NaN in any query answer, a populated
// Status/report on every failure path — and that with fail points
// configured but not firing the pipeline is bit-identical to a run with
// the subsystem disabled.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "aqp/query.h"
#include "data/generators.h"
#include "ensemble/ensemble_model.h"
#include "ensemble/partitioning.h"
#include "relation/table.h"
#include "server/server.h"
#include "server/socket_client.h"
#include "server/socket_transport.h"
#include "server/transport.h"
#include "util/failpoint.h"
#include "util/rng.h"
#include "vae/client.h"
#include "vae/vae_model.h"
#include "vae/workflow.h"

namespace deepaqp {
namespace {

/// Every scenario starts and ends with the registry clean so no trigger
/// state leaks across tests (the registry is process-global).
class ChaosTest : public ::testing::Test {
 protected:
  void SetUp() override { util::DisableFailpoints(); }
  void TearDown() override { util::DisableFailpoints(); }
};

relation::Table ChaosTable() {
  return data::GenerateTaxi({.rows = 800, .seed = 5});
}

vae::VaeAqpOptions ChaosOptions() {
  vae::VaeAqpOptions opts;
  opts.epochs = 5;
  opts.hidden_dim = 32;
  opts.seed = 31;
  opts.encoder.numeric_bins = 16;
  return opts;
}

/// One healthy model (trained with fail points disabled), shared as bytes
/// so each scenario deserializes its own pristine instance.
const std::vector<uint8_t>& HealthyModelBytes() {
  static const std::vector<uint8_t>* bytes = [] {
    util::DisableFailpoints();
    auto model = vae::VaeAqpModel::Train(ChaosTable(), ChaosOptions());
    EXPECT_TRUE(model.ok()) << model.status().ToString();
    return new std::vector<uint8_t>((*model)->Serialize());
  }();
  return *bytes;
}

std::unique_ptr<vae::VaeAqpModel> OpenHealthy() {
  auto model = vae::VaeAqpModel::Deserialize(HealthyModelBytes());
  EXPECT_TRUE(model.ok()) << model.status().ToString();
  return std::move(*model);
}

void ExpectAllNumericCellsFinite(const relation::Table& t) {
  for (size_t c = 0; c < t.num_attributes(); ++c) {
    if (t.schema().IsCategorical(c)) continue;
    for (size_t r = 0; r < t.num_rows(); ++r) {
      ASSERT_TRUE(std::isfinite(t.NumValue(r, c)))
          << "row " << r << " col " << c;
    }
  }
}

void ExpectTablesIdentical(const relation::Table& a,
                           const relation::Table& b) {
  ASSERT_EQ(a.num_rows(), b.num_rows());
  ASSERT_EQ(a.num_attributes(), b.num_attributes());
  for (size_t c = 0; c < a.num_attributes(); ++c) {
    for (size_t r = 0; r < a.num_rows(); ++r) {
      if (a.schema().IsCategorical(c)) {
        ASSERT_EQ(a.CatCode(r, c), b.CatCode(r, c));
      } else {
        ASSERT_EQ(a.NumValue(r, c), b.NumValue(r, c));  // bitwise
      }
    }
  }
}

aqp::AggregateQuery AvgFareQuery(const relation::Schema& schema) {
  aqp::AggregateQuery q;
  q.agg = aqp::AggFunc::kAvg;
  q.measure_attr = schema.IndexOf("fare");
  return q;
}

// ---------------------------------------------------------------------------
// Determinism contract: configured-but-dormant fail points change nothing.

TEST_F(ChaosTest, ConfiguredButNotFiringIsBitIdentical) {
  // Training with every relevant site present but `off` must serialize to
  // the exact bytes of the fully disabled run.
  ASSERT_TRUE(util::ConfigureFailpoints(
                  "vae/train_epoch=off,nn/gemm=off,vae/sample_chunk=off,"
                  "arena/acquire=off,snapshot/open=off,snapshot/section=off")
                  .ok());
  auto model = vae::VaeAqpModel::Train(ChaosTable(), ChaosOptions());
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  EXPECT_EQ((*model)->Serialize(), HealthyModelBytes());

  // Generation: disabled vs dormant vs arena-fault-under-fire. The arena
  // site only drops buffer reuse (alloc pressure), never numerics, so even
  // `always` must leave the sample pool bit-identical.
  util::DisableFailpoints();
  auto baseline_model = OpenHealthy();
  util::Rng rng_a(777);
  relation::Table baseline =
      baseline_model->Generate(700, baseline_model->default_t(), rng_a);

  ASSERT_TRUE(util::ConfigureFailpoints("nn/gemm=off,vae/sample_chunk=off")
                  .ok());
  util::Rng rng_b(777);
  relation::Table dormant =
      baseline_model->Generate(700, baseline_model->default_t(), rng_b);
  ExpectTablesIdentical(baseline, dormant);

  ASSERT_TRUE(util::ConfigureFailpoints("arena/acquire=always").ok());
  util::Rng rng_c(777);
  relation::Table arena_fire =
      baseline_model->Generate(700, baseline_model->default_t(), rng_c);
  ExpectTablesIdentical(baseline, arena_fire);
}

// ---------------------------------------------------------------------------
// Self-healing training.

TEST_F(ChaosTest, TrainRollsBackAndRecoversFromTransientFault) {
  ASSERT_TRUE(util::ConfigureFailpoints("vae/train_epoch=once").ok());
  vae::TrainingStats stats;
  vae::VaeAqpOptions opts = ChaosOptions();
  auto model = vae::VaeAqpModel::Train(ChaosTable(), opts, &stats);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  EXPECT_EQ(stats.report.divergence_events, 1);
  EXPECT_EQ(stats.report.rollbacks, 1);
  // One backoff step was spent on the retry.
  EXPECT_FLOAT_EQ(stats.report.final_learning_rate,
                  opts.learning_rate * opts.divergence_lr_backoff);
  // All configured epochs were ultimately kept (the faulted one retrained).
  EXPECT_EQ(stats.epochs.size(), static_cast<size_t>(opts.epochs));

  // The healed model is fully usable.
  util::Rng rng(3);
  relation::Table sample = (*model)->Generate(200, (*model)->default_t(), rng);
  EXPECT_EQ(sample.num_rows(), 200u);
  ExpectAllNumericCellsFinite(sample);
}

TEST_F(ChaosTest, TrainExhaustsRetriesWithDescriptiveStatus) {
  ASSERT_TRUE(util::ConfigureFailpoints("vae/train_epoch=always").ok());
  vae::TrainingStats stats;
  vae::VaeAqpOptions opts = ChaosOptions();
  auto model = vae::VaeAqpModel::Train(ChaosTable(), opts, &stats);
  ASSERT_FALSE(model.ok());
  const std::string message = model.status().ToString();
  EXPECT_NE(message.find("diverged"), std::string::npos) << message;
  EXPECT_NE(message.find("rollback retries"), std::string::npos) << message;
  EXPECT_NE(message.find("injected fault"), std::string::npos) << message;
  // The report is populated even on the failure path.
  EXPECT_EQ(stats.report.rollbacks, opts.max_divergence_retries);
  EXPECT_EQ(stats.report.divergence_events, opts.max_divergence_retries + 1);
}

// ---------------------------------------------------------------------------
// Degraded generation: faults absorbed, counters populated, output finite.

TEST_F(ChaosTest, GenerationAbsorbsComputeFaults) {
  auto model = OpenHealthy();
  ASSERT_TRUE(util::ConfigureFailpoints("seed=11,nn/gemm=p:0.2").ok());
  vae::GenerateStats stats;
  util::Rng rng(42);
  relation::Table sample =
      model->Generate(500, model->default_t(), rng, &stats);
  EXPECT_EQ(sample.num_rows(), 500u);  // faults cost retries, not rows
  ExpectAllNumericCellsFinite(sample);
  // The poisoned forwards were actually seen and absorbed somewhere.
  EXPECT_GT(stats.nonfinite_ratios + stats.nonfinite_rows_dropped, 0u);
}

TEST_F(ChaosTest, SampleChunkFaultsAreCountedRejections) {
  auto model = OpenHealthy();
  ASSERT_TRUE(util::ConfigureFailpoints("vae/sample_chunk=always").ok());
  vae::GenerateStats stats;
  util::Rng rng(9);
  // A finite threshold forces the rejection path where the site lives.
  relation::Table sample = model->Generate(300, 0.0, rng, &stats);
  EXPECT_EQ(sample.num_rows(), 300u);
  ExpectAllNumericCellsFinite(sample);
  // Every window poisons exactly one candidate's log-ratio; each must be
  // rejected explicitly (not slip through as an accept).
  EXPECT_GE(stats.nonfinite_ratios, 1u);
}

TEST_F(ChaosTest, SelectivePredicateReportsShortfall) {
  // No faults needed: an unsatisfiable predicate exhausts the candidate
  // budget and the result must say so instead of silently under-sampling.
  auto model = OpenHealthy();
  aqp::Predicate impossible;
  impossible.conditions.push_back(
      {static_cast<size_t>(model->tuple_encoder().schema().IndexOf("fare")),
       aqp::CmpOp::kGt, 1e18});
  util::Rng rng(12);
  vae::GenerateWhereResult result = model->GenerateWhereReport(
      100, impossible, vae::kTPlusInf, rng, /*max_candidates=*/2048);
  EXPECT_EQ(result.rows.num_rows(), 0u);
  EXPECT_EQ(result.requested, 100u);
  EXPECT_EQ(result.shortfall(), 100u);
  EXPECT_GE(result.candidates, 2048u);  // the budget was actually spent
}

// ---------------------------------------------------------------------------
// Bias elimination degradation -> client-visible CI widening.

TEST_F(ChaosTest, CrossMatchFaultDegradesBiasEliminationAndWidensClientCi) {
  auto model = OpenHealthy();
  ASSERT_TRUE(util::ConfigureFailpoints("stats/cross_match=always").ok());
  vae::BiasEliminationOptions beopts;
  beopts.test_points = 64;
  beopts.max_iterations = 2;
  auto be = vae::EliminateModelBias(*model, ChaosTable(), beopts);
  ASSERT_TRUE(be.ok()) << be.status().ToString();  // best-effort, not fatal
  EXPECT_EQ(be->outcome, vae::BiasEliminationOutcome::kDegraded);
  EXPECT_FALSE(be->passed);
  ASSERT_FALSE(be->warnings.empty());
  EXPECT_NE(be->warnings[0].find("injected fault"), std::string::npos);

  // The client serves best-effort answers with visibly wider intervals.
  util::DisableFailpoints();
  vae::AqpClient::Options copts;
  copts.initial_samples = 400;
  copts.max_samples = 1600;
  copts.population_rows = 800;
  auto client = vae::AqpClient::Wrap(std::move(model), copts);
  aqp::AggregateQuery q = AvgFareQuery(client->pool().schema());
  auto before = client->Query(q);
  ASSERT_TRUE(before.ok());

  client->NoteBiasElimination(*be);
  EXPECT_EQ(client->ci_inflation(), 1.5);
  ASSERT_FALSE(client->warnings().empty());
  auto after = client->Query(q);
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(after->groups.size(), before->groups.size());
  for (size_t i = 0; i < after->groups.size(); ++i) {
    // Estimates unchanged, stated uncertainty widened by exactly 1.5x.
    EXPECT_EQ(after->groups[i].value, before->groups[i].value);
    EXPECT_DOUBLE_EQ(after->groups[i].ci_half_width,
                     before->groups[i].ci_half_width * 1.5);
  }

  // A later passed run clears the inflation.
  vae::BiasEliminationResult passed;
  passed.outcome = vae::BiasEliminationOutcome::kPassed;
  client->NoteBiasElimination(passed);
  EXPECT_EQ(client->ci_inflation(), 1.0);
}

TEST_F(ChaosTest, ExhaustedIterationBudgetAlsoWidensClientCi) {
  auto model = OpenHealthy();
  vae::BiasEliminationOptions beopts;
  beopts.test_points = 64;
  beopts.max_iterations = 0;  // budget gone before the first round
  auto be = vae::EliminateModelBias(*model, ChaosTable(), beopts);
  ASSERT_TRUE(be.ok());
  EXPECT_EQ(be->outcome, vae::BiasEliminationOutcome::kBudgetExhausted);
  EXPECT_FALSE(be->passed);
  EXPECT_FALSE(be->warnings.empty());

  vae::AqpClient::Options copts;
  copts.initial_samples = 200;
  copts.population_rows = 800;
  auto client = vae::AqpClient::Wrap(std::move(model), copts);
  client->NoteBiasElimination(*be);
  EXPECT_EQ(client->ci_inflation(), 1.5);
}

// ---------------------------------------------------------------------------
// Snapshot faults surface as clean Status, then recover.

TEST_F(ChaosTest, SnapshotFaultSurfacesStatusAndRecovers) {
  ASSERT_TRUE(util::ConfigureFailpoints("snapshot/open=once").ok());
  auto failed = vae::VaeAqpModel::Deserialize(HealthyModelBytes());
  ASSERT_FALSE(failed.ok());
  EXPECT_NE(failed.status().ToString().find("injected fault"),
            std::string::npos);
  // The trigger disarmed itself: the very next load succeeds.
  auto recovered = vae::VaeAqpModel::Deserialize(HealthyModelBytes());
  EXPECT_TRUE(recovered.ok()) << recovered.status().ToString();
}

// ---------------------------------------------------------------------------
// The full sweep: every site armed at low probability, end to end.

TEST_F(ChaosTest, EndToEndSweepStaysFiniteAndLogsFaults) {
  // Fallback model loaded while fail points are still disabled, in case
  // chaos training legitimately gives up.
  auto fallback = OpenHealthy();

  ASSERT_TRUE(util::ConfigureFailpoints(
                  "seed=2026,"
                  "snapshot/open=p:0.01,snapshot/section=p:0.01,"
                  "io/read=p:0.01,io/write=p:0.01,"
                  "arena/acquire=p:0.01,nn/gemm=p:0.01,"
                  "stats/cross_match=p:0.01,vae/train_epoch=p:0.01,"
                  "vae/sample_chunk=p:0.01,ensemble/train_member=p:0.01")
                  .ok());

  // Training either completes (possibly via rollbacks) or returns a
  // descriptive Status — never crashes, never yields a silent bad model.
  vae::TrainingStats stats;
  auto trained = vae::VaeAqpModel::Train(ChaosTable(), ChaosOptions(), &stats);
  std::unique_ptr<vae::VaeAqpModel> model;
  if (trained.ok()) {
    model = std::move(*trained);
  } else {
    EXPECT_FALSE(trained.status().ToString().empty());
    model = std::move(fallback);
  }

  // Ensemble training under the same sweep: completes (degraded or not)
  // with a populated report, or fails with a descriptive Status.
  {
    auto table = ChaosTable();
    auto groups = ensemble::GroupByAttribute(table, 0, 0.02);
    ensemble::Partition partition;
    for (size_t g = 0; g < std::min<size_t>(2, groups.size()); ++g) {
      partition.parts.push_back({static_cast<int>(g)});
    }
    ensemble::EnsembleTrainReport report;
    auto ens = ensemble::EnsembleModel::Train(table, groups, partition,
                                              ChaosOptions(), &report);
    if (ens.ok()) {
      EXPECT_EQ(report.members_total, partition.parts.size());
      EXPECT_GT(report.members_trained, 0u);
      EXPECT_GT(report.coverage, 0.0);
    } else {
      EXPECT_FALSE(ens.status().ToString().empty());
      EXPECT_EQ(report.coverage, 0.0);
    }
  }

  // Bias elimination: any outcome is legal under faults; a best-effort
  // result must carry an outcome the client knows how to act on.
  vae::BiasEliminationOptions beopts;
  beopts.test_points = 64;
  beopts.max_iterations = 2;
  auto be = vae::EliminateModelBias(*model, ChaosTable(), beopts);

  // Query path: aggregates must be finite no matter what fired upstream.
  vae::AqpClient::Options copts;
  copts.initial_samples = 500;
  copts.max_samples = 2000;
  copts.population_rows = 800;
  auto client = vae::AqpClient::Wrap(std::move(model), copts);
  if (be.ok()) client->NoteBiasElimination(*be);
  ExpectAllNumericCellsFinite(client->pool());

  aqp::AggregateQuery avg = AvgFareQuery(client->pool().schema());
  aqp::AggregateQuery grouped = avg;
  grouped.group_by_attr = client->pool().schema().IndexOf("pickup_borough");
  for (const aqp::AggregateQuery& q : {avg, grouped}) {
    auto result = client->Query(q);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    for (const auto& g : result->groups) {
      EXPECT_TRUE(std::isfinite(g.value));
      EXPECT_TRUE(std::isfinite(g.ci_half_width));
      EXPECT_GE(g.ci_half_width, 0.0);
    }
  }

  // Persist the structured fault log (the CI chaos job uploads it).
  auto report = util::FailpointReport();
  ASSERT_FALSE(report.empty());
  uint64_t evaluations = 0;
  for (const auto& s : report) evaluations += s.evaluations;
  EXPECT_GT(evaluations, 0u);  // the sweep really exercised the sites
  const std::string json = util::FailpointReportJson();
  std::FILE* f = std::fopen("CHAOS_FAULTS.json", "w");
  ASSERT_NE(f, nullptr);
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
}

// ---------------------------------------------------------------------------
// Server daemon faults: an injected failure in any serving-path site is a
// session-scoped error response — never process death, never a wedged
// server.

server::AqpServer::Options ServerChaosOptions() {
  server::AqpServer::Options opts;
  opts.client.initial_samples = 200;
  opts.client.max_samples = 1600;
  opts.client.population_rows = 800;
  opts.client.seed = 99;
  return opts;
}

/// Drives one query over the pipe to completion; returns the decoded final
/// estimate, or the stream's error.
util::Result<server::Estimate> RunServerQuery(
    server::AqpServer& srv, const std::shared_ptr<server::PipeTransport>& pipe,
    uint64_t session, const std::string& sql, double max_relative_ci) {
  server::ClientMessage query;
  query.kind = server::ClientMessageKind::kQuery;
  query.session = session;
  query.sql = sql;
  query.max_relative_ci = max_relative_ci;
  srv.Handle(query, pipe);

  server::ServerMessage first;
  do {
    first = pipe->Pop();
  } while (first.kind == server::ServerMessageKind::kData);  // stale frames
  if (first.kind == server::ServerMessageKind::kError) {
    return util::Status::Internal(first.message);
  }
  EXPECT_EQ(first.kind, server::ServerMessageKind::kQueryStarted);
  server::ChannelConsumer consumer(first.channel);
  std::vector<uint8_t> last_payload;
  while (!consumer.finished()) {
    server::ServerMessage msg = pipe->Pop();
    if (msg.kind == server::ServerMessageKind::kData &&
        msg.channel != first.channel) {
      continue;
    }
    if (msg.kind == server::ServerMessageKind::kError) {
      return util::Status::Internal(msg.message);
    }
    if (msg.kind != server::ServerMessageKind::kData) {
      return util::Status::Internal("unexpected message kind");
    }
    consumer.OnData(msg.data);
    for (auto& p : consumer.TakeDelivered()) last_payload = std::move(p);
    server::ClientMessage ack;
    ack.kind = server::ClientMessageKind::kAck;
    ack.session = session;
    ack.ack = consumer.MakeAck();
    srv.Handle(ack, pipe);
  }
  return server::DecodeEstimate(last_payload);
}

uint64_t OpenServerSession(server::AqpServer& srv,
                           const std::shared_ptr<server::PipeTransport>& pipe) {
  server::ClientMessage open;
  open.kind = server::ClientMessageKind::kOpenSession;
  open.model_name = "m";
  srv.Handle(open, pipe);
  server::ServerMessage reply = pipe->Pop();
  EXPECT_EQ(reply.kind, server::ServerMessageKind::kSessionOpened);
  return reply.session;
}

TEST_F(ChaosTest, ServerRegistryLoadFaultLeavesOldVersionServing) {
  server::AqpServer srv(ServerChaosOptions());
  auto v1 = srv.registry().Register("m", HealthyModelBytes());
  ASSERT_TRUE(v1.ok()) << v1.status().ToString();

  ASSERT_TRUE(util::ConfigureFailpoints("server/registry_load=once").ok());
  auto failed = srv.registry().Register("m", HealthyModelBytes());
  ASSERT_FALSE(failed.ok());
  EXPECT_NE(failed.status().ToString().find("injected fault"),
            std::string::npos);
  // The previous version is untouched and keeps serving new sessions.
  EXPECT_EQ(srv.registry().VersionOf("m"), 1u);
  auto pipe = std::make_shared<server::PipeTransport>();
  uint64_t session = OpenServerSession(srv, pipe);
  auto result = RunServerQuery(srv, pipe, session,
                               "SELECT AVG(fare) FROM R", 0.1);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(std::isfinite(result->result.Scalar()));

  // The trigger disarmed itself: the next hot swap succeeds as version 2.
  auto v2 = srv.registry().Register("m", HealthyModelBytes());
  ASSERT_TRUE(v2.ok()) << v2.status().ToString();
  EXPECT_EQ(*v2, 2u);
}

TEST_F(ChaosTest, ServerEnqueueFaultIsErrorResponseNotDeath) {
  server::AqpServer srv(ServerChaosOptions());
  ASSERT_TRUE(srv.registry().Register("m", HealthyModelBytes()).ok());
  auto pipe = std::make_shared<server::PipeTransport>();
  uint64_t session = OpenServerSession(srv, pipe);
  srv.WaitIdle();

  // The scheduler refuses the query's strand task; the client gets an
  // error response and the session object survives.
  ASSERT_TRUE(util::ConfigureFailpoints("server/enqueue=once").ok());
  auto failed =
      RunServerQuery(srv, pipe, session, "SELECT AVG(fare) FROM R", 0.1);
  ASSERT_FALSE(failed.ok());
  EXPECT_NE(failed.status().ToString().find("injected fault"),
            std::string::npos);
  EXPECT_EQ(srv.num_sessions(), 1u);

  // Resubmitting on the same session completes normally.
  auto retried =
      RunServerQuery(srv, pipe, session, "SELECT AVG(fare) FROM R", 0.1);
  ASSERT_TRUE(retried.ok()) << retried.status().ToString();
  EXPECT_TRUE(std::isfinite(retried->result.Scalar()));
}

TEST_F(ChaosTest, ServerChannelSendFaultFailsStreamNotSession) {
  server::AqpServer srv(ServerChaosOptions());
  ASSERT_TRUE(srv.registry().Register("m", HealthyModelBytes()).ok());
  auto pipe = std::make_shared<server::PipeTransport>();
  uint64_t session = OpenServerSession(srv, pipe);
  srv.WaitIdle();

  // The first frame push fails; the stream dies with an error response,
  // the session does not.
  ASSERT_TRUE(util::ConfigureFailpoints("server/channel_send=once").ok());
  auto failed =
      RunServerQuery(srv, pipe, session, "SELECT AVG(fare) FROM R", 0.1);
  ASSERT_FALSE(failed.ok());
  EXPECT_NE(failed.status().ToString().find("injected fault"),
            std::string::npos);
  EXPECT_EQ(srv.num_sessions(), 1u);

  // The next stream on the same session completes with finite estimates
  // (the failed push may have grown the pool, so only finiteness — not a
  // particular trajectory — is guaranteed here).
  auto next = RunServerQuery(srv, pipe, session,
                             "SELECT AVG(fare) FROM R WHERE trip_distance > 1",
                             0.1);
  ASSERT_TRUE(next.ok()) << next.status().ToString();
  for (const auto& g : next->result.groups) {
    EXPECT_TRUE(std::isfinite(g.value));
    EXPECT_TRUE(std::isfinite(g.ci_half_width));
  }
}

// ---------------------------------------------------------------------------
// Socket transport faults: every injected socket-layer failure has a blast
// radius of exactly one connection (and at most one dial). Sessions outlive
// their connections, other clients never notice, the process never dies.

/// One loopback TCP server over ServerChaosOptions, model "m" registered.
/// Heartbeats tick but the natural liveness deadline is far away, so only
/// an injected fault ever reaps a connection.
struct ChaosTcpServer {
  ChaosTcpServer() {
    srv = std::make_unique<server::AqpServer>(ServerChaosOptions());
    auto version = srv->registry().Register("m", HealthyModelBytes());
    EXPECT_TRUE(version.ok()) << version.status().ToString();
    server::SocketServer::Options sopts;
    sopts.port = 0;  // ephemeral
    sopts.heartbeat_ms = 200;
    sopts.heartbeat_misses = 1000;
    sock = std::make_unique<server::SocketServer>(srv.get(), sopts);
    EXPECT_TRUE(sock->Listen().ok());
    EXPECT_TRUE(sock->Start().ok());
  }
  ~ChaosTcpServer() {
    util::DisableFailpoints();  // a socket fault must never hit the drain
    sock->Shutdown();
  }
  std::unique_ptr<server::AqpServer> srv;
  std::unique_ptr<server::SocketServer> sock;
};

server::RetryingConnection::Options ChaosClient(const ChaosTcpServer& ts) {
  server::RetryingConnection::Options copts;
  copts.port = ts.sock->port();
  return copts;
}

void ExpectFiniteFinal(const server::RetryingConnection::StreamResult& s) {
  ASSERT_FALSE(s.estimates.empty());
  EXPECT_TRUE(std::isfinite(s.estimates.back().result.Scalar()));
}

TEST_F(ChaosTest, SocketAcceptFaultDropsOneDialNotTheListener) {
  ChaosTcpServer ts;
  ASSERT_TRUE(util::ConfigureFailpoints("socket/accept=once").ok());

  // The first TCP handshake completes via the kernel backlog but the server
  // drops the accepted socket, so the open handshake dies with it; the
  // supervised client redials (the listener survived the fault) and the
  // second dial serves normally.
  server::RetryingConnection client(ChaosClient(ts));
  ASSERT_TRUE(client.OpenSession("m").ok());
  EXPECT_GE(client.reconnects(), 1u);
  EXPECT_EQ(ts.sock->num_connections(), 1u);  // only the redial survived
  util::DisableFailpoints();

  auto result = client.RunQuery("SELECT AVG(fare) FROM R", 0.1);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ExpectFiniteFinal(*result);
  EXPECT_EQ(ts.srv->num_sessions(), 1u);
}

TEST_F(ChaosTest, SocketReadFaultCostsOneConnectionStreamResumes) {
  ChaosTcpServer ts;
  server::RetryingConnection client(ChaosClient(ts));
  ASSERT_TRUE(client.Connect().ok());
  ASSERT_TRUE(client.OpenSession("m").ok());

  // The read of the query frame kills the connection server-side; the
  // supervised client reconnects, resumes by token and re-sends the query.
  ASSERT_TRUE(util::ConfigureFailpoints("socket/read=once").ok());
  auto result = client.RunQuery("SELECT AVG(fare) FROM R", 0.1);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ExpectFiniteFinal(*result);
  EXPECT_GE(client.reconnects(), 1u);
  EXPECT_EQ(ts.srv->num_sessions(), 1u);
  util::DisableFailpoints();

  // Other clients were never in the blast radius.
  server::RetryingConnection other(ChaosClient(ts));
  ASSERT_TRUE(other.Connect().ok());
  ASSERT_TRUE(other.OpenSession("m").ok());
  auto second = other.RunQuery("SELECT COUNT(*) FROM R", 0.1);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(other.reconnects(), 0u);
  EXPECT_EQ(ts.srv->num_sessions(), 2u);
}

TEST_F(ChaosTest, SocketWriteFaultCostsOneConnectionStreamResumes) {
  ChaosTcpServer ts;
  server::RetryingConnection client(ChaosClient(ts));
  ASSERT_TRUE(client.Connect().ok());
  ASSERT_TRUE(client.OpenSession("m").ok());

  // The first server->client write after arming (the stream's start
  // notification or first frame) fails; same supervised recovery.
  ASSERT_TRUE(util::ConfigureFailpoints("socket/write=once").ok());
  auto result = client.RunQuery("SELECT AVG(fare) FROM R", 0.1);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ExpectFiniteFinal(*result);
  EXPECT_GE(client.reconnects(), 1u);
  EXPECT_EQ(ts.srv->num_sessions(), 1u);
}

TEST_F(ChaosTest, HeartbeatMissReapsOneConnectionSessionsSurvive) {
  ChaosTcpServer ts;
  server::RetryingConnection a(ChaosClient(ts));
  server::RetryingConnection b(ChaosClient(ts));
  ASSERT_TRUE(a.Connect().ok());
  ASSERT_TRUE(a.OpenSession("m").ok());
  ASSERT_TRUE(b.Connect().ok());
  ASSERT_TRUE(b.OpenSession("m").ok());
  EXPECT_EQ(ts.sock->num_connections(), 2u);
  EXPECT_EQ(ts.srv->num_sessions(), 2u);

  // One injected liveness expiry: the next heartbeat tick reaps exactly one
  // connection. Sessions are connection-independent, so both survive.
  ASSERT_TRUE(util::ConfigureFailpoints("server/heartbeat_miss=once").ok());
  for (int i = 0; i < 400 && ts.sock->reaped_connections() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(ts.sock->reaped_connections(), 1u);
  EXPECT_EQ(ts.sock->num_connections(), 1u);
  EXPECT_EQ(ts.srv->num_sessions(), 2u);
  util::DisableFailpoints();

  // Both clients still complete streams; only the reaped one reconnects.
  auto ra = a.RunQuery("SELECT AVG(fare) FROM R", 0.1);
  ASSERT_TRUE(ra.ok()) << ra.status().ToString();
  auto rb = b.RunQuery("SELECT COUNT(*) FROM R", 0.1);
  ASSERT_TRUE(rb.ok()) << rb.status().ToString();
  EXPECT_EQ(a.reconnects() + b.reconnects(), 1u);
  EXPECT_EQ(ts.srv->num_sessions(), 2u);
}

TEST_F(ChaosTest, AdmissionFaultShedsOneOpenNotTheServer) {
  ChaosTcpServer ts;
  ASSERT_TRUE(util::ConfigureFailpoints("server/admission=once").ok());

  // The open is shed with a typed SERVER_BUSY the client surfaces to its
  // caller (shedding only works if shed clients actually back off); the
  // connection itself stays healthy.
  server::RetryingConnection client(ChaosClient(ts));
  ASSERT_TRUE(client.Connect().ok());
  util::Status shed = client.OpenSession("m");
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.code(), util::StatusCode::kUnavailable);
  EXPECT_NE(shed.message().find("SERVER_BUSY"), std::string::npos);
  EXPECT_EQ(ts.srv->num_sessions(), 0u);

  // The trigger disarmed itself: the retry on the same connection serves.
  ASSERT_TRUE(client.OpenSession("m").ok());
  auto result = client.RunQuery("SELECT AVG(fare) FROM R", 0.1);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ExpectFiniteFinal(*result);
  EXPECT_EQ(ts.srv->num_sessions(), 1u);
}

}  // namespace
}  // namespace deepaqp
