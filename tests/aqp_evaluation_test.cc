#include "aqp/evaluation.h"

#include <gtest/gtest.h>

#include "aqp/executor.h"
#include "aqp/metrics.h"
#include "data/generators.h"
#include "data/workload.h"
#include "ensemble/partitioning.h"

namespace deepaqp::aqp {
namespace {

TEST(EvaluationTest, OracleSamplerHasZeroModelError) {
  // A "sampler" that returns true uniform samples should produce the same
  // error as the reference, so WorkloadRelativeErrors must be small and
  // shrink with the sample fraction.
  auto table = data::GenerateTaxi({.rows = 8000, .seed = 1});
  data::WorkloadConfig wcfg;
  wcfg.num_queries = 25;
  auto workload = data::GenerateWorkload(table, wcfg);
  EvalOptions small, large;
  small.sample_fraction = 0.01;
  small.num_trials = 4;
  large.sample_fraction = 0.20;
  large.num_trials = 4;
  auto e_small = WorkloadRelativeErrors(workload, table,
                                        UniformTableSampler(table), small);
  auto e_large = WorkloadRelativeErrors(workload, table,
                                        UniformTableSampler(table), large);
  ASSERT_TRUE(e_small.ok());
  ASSERT_TRUE(e_large.ok());
  EXPECT_LT(DistributionSummary::FromValues(*e_large).median,
            DistributionSummary::FromValues(*e_small).median + 1e-12);
}

TEST(EvaluationTest, BrokenSamplerGetsPenalizedNotCrash) {
  // A sampler returning no rows at all: estimation fails per query and the
  // harness assigns the bounded maximal error instead of crashing.
  auto table = data::GenerateTaxi({.rows = 2000, .seed = 2});
  data::WorkloadConfig wcfg;
  wcfg.num_queries = 10;
  auto workload = data::GenerateWorkload(table, wcfg);
  SampleFn broken = [&table](size_t, util::Rng&) {
    return relation::Table(table.schema());
  };
  EvalOptions opts;
  opts.num_trials = 2;
  auto errors = WorkloadRelativeErrors(workload, table, broken, opts);
  ASSERT_TRUE(errors.ok());
  for (double e : *errors) EXPECT_DOUBLE_EQ(e, 1.0);
}

TEST(EvaluationTest, DirectOracleHasZeroError) {
  auto table = data::GenerateTaxi({.rows = 3000, .seed = 3});
  data::WorkloadConfig wcfg;
  wcfg.num_queries = 15;
  auto workload = data::GenerateWorkload(table, wcfg);
  AnswerFn oracle = [&table](const AggregateQuery& q) {
    return ExecuteExact(q, table);
  };
  auto errors = WorkloadRelativeErrorsDirect(workload, table, oracle);
  ASSERT_TRUE(errors.ok());
  for (double e : *errors) EXPECT_NEAR(e, 0.0, 1e-12);
}

TEST(EvaluationTest, DirectRefusalsGetMaximalError) {
  auto table = data::GenerateTaxi({.rows = 3000, .seed = 4});
  data::WorkloadConfig wcfg;
  wcfg.num_queries = 12;
  auto workload = data::GenerateWorkload(table, wcfg);
  AnswerFn refuses = [](const AggregateQuery&) {
    return util::Result<QueryResult>(
        util::Status::Unimplemented("cannot serve"));
  };
  auto errors = WorkloadRelativeErrorsDirect(workload, table, refuses);
  ASSERT_TRUE(errors.ok());
  for (double e : *errors) EXPECT_DOUBLE_EQ(e, 1.0);
}

TEST(EvaluationTest, RedIsDeterministicForFixedSeeds) {
  auto table = data::GenerateTaxi({.rows = 4000, .seed = 5});
  data::WorkloadConfig wcfg;
  wcfg.num_queries = 10;
  auto workload = data::GenerateWorkload(table, wcfg);
  EvalOptions opts;
  opts.num_trials = 3;
  auto a = RelativeErrorDifferences(workload, table,
                                    UniformTableSampler(table), opts);
  auto b = RelativeErrorDifferences(workload, table,
                                    UniformTableSampler(table), opts);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
}

}  // namespace
}  // namespace deepaqp::aqp

namespace deepaqp::ensemble {
namespace {

TEST(HierarchyFanoutTest, DpHandlesTernaryNodes) {
  // Hand-built hierarchy: root with 3 children (one internal).
  Hierarchy h;
  h.nodes.resize(6);
  h.nodes[0].name = "root";
  h.nodes[0].children = {1, 2, 3};
  h.nodes[1].group = 0;
  h.nodes[2].group = 1;
  h.nodes[3].name = "pair";
  h.nodes[3].children = {4, 5};
  h.nodes[4].group = 2;
  h.nodes[5].group = 3;
  h.root = 0;

  auto leaves = h.LeavesUnder(0);
  EXPECT_EQ(leaves, (std::vector<int>{0, 1, 2, 3}));

  // Scores: group 2 and 3 are wildly different; everything else cheap.
  std::vector<double> v = {0, 0, 0, 100};
  auto score = [&v](const std::vector<int>& groups) {
    double lo = 1e18, hi = -1e18;
    for (int g : groups) {
      lo = std::min(lo, v[g]);
      hi = std::max(hi, v[g]);
    }
    return 1.0 + (hi - lo);
  };
  // K=1: the whole tree, cost 1 + 100.
  auto p1 = PartitionHierarchyDp(h, score, 1);
  ASSERT_TRUE(p1.ok());
  EXPECT_DOUBLE_EQ(p1->total_score, 101.0);
  // K=3: the only 3-cut of a ternary root is {0},{1},{2,3} at
  // 1 + 1 + 101 = 103, worse than not splitting — the DP must keep 1 part.
  auto p3 = PartitionHierarchyDp(h, score, 3);
  ASSERT_TRUE(p3.ok());
  EXPECT_EQ(p3->parts.size(), 1u);
  EXPECT_DOUBLE_EQ(p3->total_score, 101.0);
  // K=4 can additionally split the expensive pair: 1+1+1+1 = 4 wins.
  auto p4 = PartitionHierarchyDp(h, score, 4);
  ASSERT_TRUE(p4.ok());
  EXPECT_EQ(p4->parts.size(), 4u);
  EXPECT_DOUBLE_EQ(p4->total_score, 4.0);
  EXPECT_LT(p4->total_score, p3->total_score);
}

TEST(HierarchyFanoutTest, GreedyHandlesTernaryNodes) {
  Hierarchy h;
  h.nodes.resize(4);
  h.nodes[0].children = {1, 2, 3};
  h.nodes[1].group = 0;
  h.nodes[2].group = 1;
  h.nodes[3].group = 2;
  h.root = 0;
  auto score = [](const std::vector<int>& groups) {
    return static_cast<double>(groups.size());
  };
  // Splitting the root needs 3 slots at once; K=2 cannot split a ternary
  // node, so greedy must keep the root cut.
  auto p2 = PartitionHierarchyGreedy(h, score, 2);
  ASSERT_TRUE(p2.ok());
  EXPECT_EQ(p2->parts.size(), 1u);
  auto p3 = PartitionHierarchyGreedy(h, score, 3);
  ASSERT_TRUE(p3.ok());
  EXPECT_EQ(p3->parts.size(), 3u);
}

TEST(ContiguousDpTest, KLargerThanGroupsClamps) {
  // Superadditive range cost: full splitting is the strict optimum, and k
  // beyond the group count must clamp to one range per group.
  auto part = PartitionContiguousDp(
      3,
      [](int i, int j) {
        const double len = j - i + 1;
        return len * len;  // strictly superadditive
      },
      10);
  ASSERT_TRUE(part.ok());
  EXPECT_EQ(part->parts.size(), 3u);
  EXPECT_DOUBLE_EQ(part->total_score, 3.0);
}

}  // namespace
}  // namespace deepaqp::ensemble
