#include "data/generators.h"

#include <cmath>

#include <gtest/gtest.h>

#include "aqp/executor.h"

namespace deepaqp::data {
namespace {

double Correlation(const std::vector<double>& x,
                   const std::vector<double>& y) {
  const size_t n = x.size();
  double mx = 0, my = 0;
  for (size_t i = 0; i < n; ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= n;
  my /= n;
  double sxy = 0, sxx = 0, syy = 0;
  for (size_t i = 0; i < n; ++i) {
    sxy += (x[i] - mx) * (y[i] - my);
    sxx += (x[i] - mx) * (x[i] - mx);
    syy += (y[i] - my) * (y[i] - my);
  }
  return sxy / std::sqrt(sxx * syy);
}

TEST(CensusGeneratorTest, SchemaShapeMatchesPaper) {
  auto t = GenerateCensus({.rows = 100, .seed = 1});
  // The paper: 8 categorical + 6 numeric attributes.
  EXPECT_EQ(t.schema().CategoricalIndices().size(), 8u);
  EXPECT_EQ(t.schema().NumericIndices().size(), 6u);
  EXPECT_EQ(t.num_rows(), 100u);
}

TEST(CensusGeneratorTest, DeterministicForSeed) {
  auto a = GenerateCensus({.rows = 50, .seed = 9});
  auto b = GenerateCensus({.rows = 50, .seed = 9});
  for (size_t r = 0; r < 50; ++r) {
    EXPECT_EQ(a.CatCode(r, 1), b.CatCode(r, 1));
    EXPECT_EQ(a.NumValue(r, 8), b.NumValue(r, 8));
  }
}

TEST(CensusGeneratorTest, ValueRangesAreSane) {
  auto t = GenerateCensus({.rows = 5000, .seed = 2});
  const auto age = t.schema().IndexOf("age");
  const auto hours = t.schema().IndexOf("hours_per_week");
  auto [age_min, age_max] = t.NumericRange(age);
  EXPECT_GE(age_min, 17.0);
  EXPECT_LE(age_max, 90.0);
  auto [h_min, h_max] = t.NumericRange(hours);
  EXPECT_GE(h_min, 5.0);
  EXPECT_LE(h_max, 99.0);
}

TEST(CensusGeneratorTest, EducationDrivesEducationNum) {
  auto t = GenerateCensus({.rows = 5000, .seed = 3});
  std::vector<double> edu, edu_num;
  for (size_t r = 0; r < t.num_rows(); ++r) {
    edu.push_back(t.CatCode(r, 1));
    edu_num.push_back(t.NumValue(r, 10));
  }
  // Planted negative correlation (low code = high education).
  EXPECT_LT(Correlation(edu, edu_num), -0.8);
}

TEST(CensusGeneratorTest, MaritalStatusDependsOnAge) {
  auto t = GenerateCensus({.rows = 8000, .seed = 4});
  const auto age = t.schema().IndexOf("age");
  double young_single = 0, young_total = 0, old_single = 0, old_total = 0;
  for (size_t r = 0; r < t.num_rows(); ++r) {
    const bool single = t.CatCode(r, 2) == 0;
    if (t.NumValue(r, age) < 26) {
      young_total += 1;
      young_single += single;
    } else if (t.NumValue(r, age) > 40) {
      old_total += 1;
      old_single += single;
    }
  }
  ASSERT_GT(young_total, 100);
  ASSERT_GT(old_total, 100);
  EXPECT_GT(young_single / young_total, 2 * old_single / old_total);
}

TEST(FlightsGeneratorTest, SchemaShapeMatchesPaper) {
  auto t = GenerateFlights({.rows = 100, .seed = 1});
  EXPECT_EQ(t.schema().CategoricalIndices().size(), 6u);
  EXPECT_EQ(t.schema().NumericIndices().size(), 6u);
}

TEST(FlightsGeneratorTest, LargeCardinalityAttribute) {
  FlightsConfig cfg;
  cfg.rows = 2000;
  cfg.flight_number_cardinality = 5000;
  auto t = GenerateFlights(cfg);
  EXPECT_EQ(t.Cardinality(3), 5000);
}

TEST(FlightsGeneratorTest, ArrivalTracksDeparture) {
  auto t = GenerateFlights({.rows = 5000, .seed = 5});
  std::vector<double> dep, arr;
  for (size_t r = 0; r < t.num_rows(); ++r) {
    dep.push_back(t.NumValue(r, 6));
    arr.push_back(t.NumValue(r, 7));
  }
  EXPECT_GT(Correlation(dep, arr), 0.8);
}

TEST(FlightsGeneratorTest, AirTimeTracksDistance) {
  auto t = GenerateFlights({.rows = 5000, .seed = 6});
  std::vector<double> dist, air;
  for (size_t r = 0; r < t.num_rows(); ++r) {
    dist.push_back(t.NumValue(r, 8));
    air.push_back(t.NumValue(r, 9));
  }
  EXPECT_GT(Correlation(dist, air), 0.9);
}

TEST(TaxiGeneratorTest, RushHourIsSlower) {
  auto t = GenerateTaxi({.rows = 10000, .seed = 7});
  double rush_pace = 0, rush_n = 0, off_pace = 0, off_n = 0;
  for (size_t r = 0; r < t.num_rows(); ++r) {
    const int hour = t.CatCode(r, 2);
    const double pace = t.NumValue(r, 5) / t.NumValue(r, 4);
    const bool rush = (hour >= 7 && hour <= 9) || (hour >= 16 && hour <= 19);
    if (rush) {
      rush_pace += pace;
      rush_n += 1;
    } else {
      off_pace += pace;
      off_n += 1;
    }
  }
  ASSERT_GT(rush_n, 100);
  ASSERT_GT(off_n, 100);
  EXPECT_GT(rush_pace / rush_n, off_pace / off_n);
}

TEST(TaxiGeneratorTest, ManhattanDominatesPickups) {
  auto t = GenerateTaxi({.rows = 5000, .seed = 8});
  aqp::AggregateQuery q;
  q.agg = aqp::AggFunc::kCount;
  q.filter.conditions.push_back({0, aqp::CmpOp::kEq, 0.0});
  const double manhattan = aqp::ExecuteExact(q, t)->Scalar();
  EXPECT_GT(manhattan / t.num_rows(), 0.4);
}

}  // namespace
}  // namespace deepaqp::data
