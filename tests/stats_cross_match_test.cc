#include "stats/cross_match.h"

#include <cmath>

#include <gtest/gtest.h>

namespace deepaqp::stats {
namespace {

std::vector<std::vector<double>> GaussianCloud(size_t n, size_t dim,
                                               double mean, uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::vector<double>> pts(n, std::vector<double>(dim));
  for (auto& p : pts) {
    for (double& v : p) v = rng.Gaussian(mean, 1.0);
  }
  return pts;
}

TEST(CrossMatchNullTest, PmfSumsToOne) {
  for (auto [n1, n2] : std::vector<std::pair<int, int>>{
           {4, 4}, {6, 10}, {10, 10}, {15, 17}}) {
    double total = 0.0;
    for (int a = 0; a <= std::min(n1, n2); ++a) {
      total += CrossMatchNullPmf(n1, n2, a);
    }
    EXPECT_NEAR(total, 1.0, 1e-9) << n1 << "," << n2;
  }
}

TEST(CrossMatchNullTest, ParityInfeasibleIsZero) {
  // n1 = 4: a must be even.
  EXPECT_EQ(CrossMatchNullPmf(4, 4, 1), 0.0);
  EXPECT_GT(CrossMatchNullPmf(4, 4, 2), 0.0);
  EXPECT_EQ(CrossMatchNullPmf(4, 4, 6), 0.0);  // a > min(n1, n2)
  EXPECT_EQ(CrossMatchNullPmf(4, 4, -2), 0.0);
}

TEST(CrossMatchNullTest, MatchesHandComputedCase) {
  // n1 = n2 = 2 (N = 4, 2 pairs): feasible a in {0, 2}.
  // P(a=0): both pairs within-sample = 2^0 * 2! / (C(4,2) * 1! * 1! * 0!)
  //       = 2 / 6 = 1/3. P(a=2) = 2/3.
  EXPECT_NEAR(CrossMatchNullPmf(2, 2, 0), 1.0 / 3, 1e-12);
  EXPECT_NEAR(CrossMatchNullPmf(2, 2, 2), 2.0 / 3, 1e-12);
}

TEST(CrossMatchNullTest, MeanMatchesTheory) {
  const int n1 = 10, n2 = 14;
  double mean = 0.0;
  for (int a = 0; a <= n1; ++a) {
    mean += a * CrossMatchNullPmf(n1, n2, a);
  }
  EXPECT_NEAR(mean, static_cast<double>(n1) * n2 / (n1 + n2 - 1), 1e-9);
}

TEST(CrossMatchTest, RejectsTooSmallSamples) {
  util::Rng rng(1);
  auto a = GaussianCloud(1, 2, 0, 2);
  auto b = GaussianCloud(10, 2, 0, 3);
  EXPECT_FALSE(CrossMatchTest(a, b, rng).ok());
}

TEST(CrossMatchTest, SameDistributionUsuallyPasses) {
  int rejections = 0;
  const int trials = 20;
  for (int i = 0; i < trials; ++i) {
    util::Rng rng(100 + i);
    auto a = GaussianCloud(40, 3, 0.0, 200 + i);
    auto b = GaussianCloud(40, 3, 0.0, 300 + i);
    auto result = CrossMatchTest(a, b, rng);
    ASSERT_TRUE(result.ok());
    if (result->Reject(0.05)) ++rejections;
  }
  // Nominal 5% false-positive rate; allow slack.
  EXPECT_LE(rejections, 4);
}

TEST(CrossMatchTest, SeparatedDistributionsAreDetected) {
  int rejections = 0;
  const int trials = 10;
  for (int i = 0; i < trials; ++i) {
    util::Rng rng(400 + i);
    auto a = GaussianCloud(40, 3, 0.0, 500 + i);
    auto b = GaussianCloud(40, 3, 3.0, 600 + i);  // 3-sigma shifted
    auto result = CrossMatchTest(a, b, rng);
    ASSERT_TRUE(result.ok());
    if (result->Reject(0.05)) ++rejections;
    // With a 3-sigma shift, nearly all pairs are within-sample.
    EXPECT_LT(result->a_dm, result->expected_a_dm);
  }
  EXPECT_GE(rejections, 9);
}

TEST(CrossMatchTest, PairCountsAreConsistent) {
  util::Rng rng(7);
  auto a = GaussianCloud(15, 2, 0.0, 8);
  auto b = GaussianCloud(17, 2, 0.0, 9);  // pooled 32 -> even, no drop
  auto result = CrossMatchTest(a, b, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(2 * result->a_dd + result->a_dm, 15);
  EXPECT_EQ(2 * result->a_mm + result->a_dm, 17);
}

TEST(CrossMatchTest, OddPoolDropsOnePoint) {
  util::Rng rng(11);
  auto a = GaussianCloud(8, 2, 0.0, 12);
  auto b = GaussianCloud(7, 2, 0.0, 13);  // pooled 15 -> drop one
  auto result = CrossMatchTest(a, b, rng);
  ASSERT_TRUE(result.ok());
  const int covered = 2 * (result->a_dd + result->a_mm + result->a_dm);
  EXPECT_EQ(covered, 14);
  EXPECT_GE(result->p_value, 0.0);
  EXPECT_LE(result->p_value, 1.0);
}

TEST(CrossMatchTest, PValueUnderNullIsRoughlyUniform) {
  // Property check on the exact-matching branch (pooled n <= 20): under H0
  // the p-value should not concentrate near 0.
  int small_p = 0;
  const int trials = 40;
  for (int i = 0; i < trials; ++i) {
    util::Rng rng(700 + i);
    auto a = GaussianCloud(8, 2, 0.0, 800 + i);
    auto b = GaussianCloud(8, 2, 0.0, 900 + i);
    auto result = CrossMatchTest(a, b, rng);
    ASSERT_TRUE(result.ok());
    if (result->p_value < 0.1) ++small_p;
  }
  EXPECT_LE(small_p, 10);
}

}  // namespace
}  // namespace deepaqp::stats
