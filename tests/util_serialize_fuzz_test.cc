// Robustness sweep for the deserializers: random byte buffers and
// truncations of valid model payloads must produce clean Status errors,
// never crashes or giant allocations.

#include <gtest/gtest.h>

#include "data/generators.h"
#include "encoding/tuple_encoder.h"
#include "util/rng.h"
#include "util/serialize.h"
#include "vae/vae_model.h"

namespace deepaqp {
namespace {

TEST(SerializeFuzzTest, HostileVectorLengthsAreRejected) {
  // Claim ~2^61 floats: the remainder-based bounds check must refuse
  // without wrapping or allocating.
  util::ByteWriter w;
  w.WriteU64(uint64_t{1} << 61);
  w.WriteF32(1.0f);
  util::ByteReader r(w.bytes());
  EXPECT_FALSE(r.ReadF32Vector().ok());

  util::ByteWriter w2;
  w2.WriteU64(~uint64_t{0});  // string length -1
  util::ByteReader r2(w2.bytes());
  EXPECT_FALSE(r2.ReadString().ok());
}

TEST(SerializeFuzzTest, RandomBuffersNeverCrashModelLoad) {
  util::Rng rng(1234);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<uint8_t> junk(rng.NextIndex(256));
    for (auto& b : junk) b = static_cast<uint8_t>(rng.NextIndex(256));
    auto model = vae::VaeAqpModel::Deserialize(junk);
    EXPECT_FALSE(model.ok());
  }
}

TEST(SerializeFuzzTest, TruncatedModelsFailCleanly) {
  auto table = data::GenerateTaxi({.rows = 400, .seed = 5});
  vae::VaeAqpOptions options;
  options.epochs = 2;
  options.hidden_dim = 16;
  auto model = vae::VaeAqpModel::Train(table, options);
  ASSERT_TRUE(model.ok());
  const std::vector<uint8_t> bytes = (*model)->Serialize();
  util::Rng rng(77);
  for (int trial = 0; trial < 50; ++trial) {
    const size_t cut = rng.NextIndex(bytes.size());
    std::vector<uint8_t> truncated(bytes.begin(), bytes.begin() + cut);
    EXPECT_FALSE(vae::VaeAqpModel::Deserialize(truncated).ok())
        << "cut at " << cut;
  }
}

TEST(SerializeFuzzTest, BitFlippedEncoderHeadersFailOrStayConsistent) {
  auto table = data::GenerateTaxi({.rows = 300, .seed = 6});
  auto enc = encoding::TupleEncoder::Fit(table, {});
  ASSERT_TRUE(enc.ok());
  util::ByteWriter w;
  enc->Serialize(w);
  std::vector<uint8_t> bytes = w.bytes();
  util::Rng rng(88);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<uint8_t> mutated = bytes;
    mutated[rng.NextIndex(mutated.size())] ^=
        static_cast<uint8_t>(1u << rng.NextIndex(8));
    util::ByteReader r(mutated);
    auto back = encoding::TupleEncoder::Deserialize(r);
    // Either a clean error, or a structurally consistent encoder.
    if (back.ok()) {
      size_t offset = 0;
      for (const auto& layout : back->layout()) {
        EXPECT_EQ(layout.offset, offset);
        offset += layout.width;
      }
      EXPECT_EQ(back->encoded_dim(), offset);
    }
  }
}

}  // namespace
}  // namespace deepaqp
