// Robustness sweep for the deserializers: random byte buffers, bit flips,
// truncations, and version-skewed snapshots of valid model payloads must
// produce clean Status errors, never crashes, silent garbage models, or
// giant allocations — and a clean save->load round trip must reproduce
// bit-identical samples at every thread count.

#include <gtest/gtest.h>

#include "data/generators.h"
#include "encoding/tuple_encoder.h"
#include "ensemble/ensemble_model.h"
#include "ensemble/partitioning.h"
#include "util/rng.h"
#include "util/serialize.h"
#include "util/snapshot.h"
#include "util/thread_pool.h"
#include "vae/vae_model.h"

namespace deepaqp {
namespace {

vae::VaeAqpOptions TinyVaeOptions() {
  vae::VaeAqpOptions options;
  options.epochs = 2;
  options.hidden_dim = 16;
  return options;
}

util::Result<std::unique_ptr<vae::VaeAqpModel>> TrainTinyVae(uint64_t seed) {
  auto table = data::GenerateTaxi({.rows = 400, .seed = seed});
  return vae::VaeAqpModel::Train(table, TinyVaeOptions());
}

util::Result<std::unique_ptr<ensemble::EnsembleModel>> TrainTinyEnsemble() {
  auto table = data::GenerateTaxi({.rows = 1000, .seed = 9});
  auto groups = ensemble::GroupByAttribute(table, 0, 0.02);
  ensemble::Partition partition;
  for (size_t g = 0; g < std::min<size_t>(2, groups.size()); ++g) {
    partition.parts.push_back({static_cast<int>(g)});
  }
  return ensemble::EnsembleModel::Train(table, groups, partition,
                                        TinyVaeOptions());
}

void ExpectTablesIdentical(const relation::Table& a,
                           const relation::Table& b) {
  ASSERT_EQ(a.num_rows(), b.num_rows());
  ASSERT_EQ(a.num_attributes(), b.num_attributes());
  for (size_t c = 0; c < a.num_attributes(); ++c) {
    for (size_t r = 0; r < a.num_rows(); ++r) {
      if (a.schema().IsCategorical(c)) {
        ASSERT_EQ(a.CatCode(r, c), b.CatCode(r, c))
            << "row " << r << " col " << c;
      } else {
        ASSERT_EQ(a.NumValue(r, c), b.NumValue(r, c))
            << "row " << r << " col " << c;
      }
    }
  }
}

size_t SectionOffset(const std::vector<uint8_t>& bytes,
                     const std::string& name) {
  auto snap = util::SnapshotReader::Open(bytes);
  EXPECT_TRUE(snap.ok()) << snap.status().ToString();
  for (const auto& s : snap->sections()) {
    if (s.name == name) return s.offset + s.size / 2;
  }
  ADD_FAILURE() << "no section " << name;
  return 0;
}

TEST(SerializeFuzzTest, HostileVectorLengthsAreRejected) {
  // Claim ~2^61 floats: the remainder-based bounds check must refuse
  // without wrapping or allocating.
  util::ByteWriter w;
  w.WriteU64(uint64_t{1} << 61);
  w.WriteF32(1.0f);
  util::ByteReader r(w.bytes());
  EXPECT_FALSE(r.ReadF32Vector().ok());

  util::ByteWriter w2;
  w2.WriteU64(~uint64_t{0});  // string length -1
  util::ByteReader r2(w2.bytes());
  EXPECT_FALSE(r2.ReadString().ok());
}

TEST(SerializeFuzzTest, RandomBuffersNeverCrashModelLoad) {
  util::Rng rng(1234);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<uint8_t> junk(rng.NextIndex(256));
    for (auto& b : junk) b = static_cast<uint8_t>(rng.NextIndex(256));
    auto model = vae::VaeAqpModel::Deserialize(junk);
    EXPECT_FALSE(model.ok());
  }
}

TEST(SerializeFuzzTest, TruncatedModelsFailCleanly) {
  auto model = TrainTinyVae(5);
  ASSERT_TRUE(model.ok());
  const std::vector<uint8_t> bytes = (*model)->Serialize();
  util::Rng rng(77);
  for (int trial = 0; trial < 50; ++trial) {
    const size_t cut = rng.NextIndex(bytes.size());
    std::vector<uint8_t> truncated(bytes.begin(), bytes.begin() + cut);
    EXPECT_FALSE(vae::VaeAqpModel::Deserialize(truncated).ok())
        << "cut at " << cut;
  }
}

TEST(SerializeFuzzTest, BitFlippedModelsAlwaysRejected) {
  // With a whole-file checksum, EVERY single flipped bit must be caught —
  // not just flips that happen to break a structural invariant.
  auto model = TrainTinyVae(15);
  ASSERT_TRUE(model.ok());
  const std::vector<uint8_t> bytes = (*model)->Serialize();
  util::Rng rng(99);
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<uint8_t> mutated = bytes;
    const size_t byte = rng.NextIndex(mutated.size());
    mutated[byte] ^= static_cast<uint8_t>(1u << rng.NextIndex(8));
    auto back = vae::VaeAqpModel::Deserialize(mutated);
    EXPECT_FALSE(back.ok()) << "flip at byte " << byte << " was accepted";
  }
}

TEST(SerializeFuzzTest, FutureSnapshotVersionsAreDiagnosed) {
  // Container format from the future.
  util::SnapshotWriter future(vae::kVaeModelSnapshotKind,
                              vae::kVaeModelPayloadVersion,
                              util::kSnapshotFormatVersion + 1);
  future.AddSection("meta").WriteF64(0.0);
  auto back = vae::VaeAqpModel::Deserialize(future.Finish());
  ASSERT_FALSE(back.ok());
  EXPECT_NE(back.status().message().find("format version"),
            std::string::npos)
      << back.status().ToString();

  // Payload schema from the future (container itself is fine).
  util::SnapshotWriter bumped(vae::kVaeModelSnapshotKind,
                              vae::kVaeModelPayloadVersion + 1);
  bumped.AddSection("meta").WriteF64(0.0);
  auto back2 = vae::VaeAqpModel::Deserialize(bumped.Finish());
  ASSERT_FALSE(back2.ok());
  EXPECT_NE(back2.status().message().find("payload version"),
            std::string::npos)
      << back2.status().ToString();
}

TEST(SerializeFuzzTest, WrongPayloadKindIsDiagnosed) {
  auto ens = TrainTinyEnsemble();
  ASSERT_TRUE(ens.ok()) << ens.status().ToString();
  const std::vector<uint8_t> ens_bytes = (*ens)->Serialize();
  auto as_vae = vae::VaeAqpModel::Deserialize(ens_bytes);
  ASSERT_FALSE(as_vae.ok());
  EXPECT_NE(as_vae.status().message().find(ensemble::kEnsembleSnapshotKind),
            std::string::npos)
      << as_vae.status().ToString();

  auto model = TrainTinyVae(16);
  ASSERT_TRUE(model.ok());
  EXPECT_FALSE(
      ensemble::EnsembleModel::Deserialize((*model)->Serialize()).ok());
}

TEST(SerializeFuzzTest, EnsembleDegradedLoadSkipsCorruptMember) {
  auto ens = TrainTinyEnsemble();
  ASSERT_TRUE(ens.ok()) << ens.status().ToString();
  ASSERT_EQ((*ens)->num_members(), 2u);
  const std::vector<uint8_t> bytes = (*ens)->Serialize();

  std::vector<uint8_t> mutated = bytes;
  mutated[SectionOffset(bytes, "member-0000")] ^= 0x10;

  // Strict load refuses the whole file; degraded load keeps the intact
  // member and reports the reduced coverage.
  EXPECT_FALSE(ensemble::EnsembleModel::Deserialize(mutated).ok());
  ensemble::EnsembleLoadReport report;
  auto degraded =
      ensemble::EnsembleModel::DeserializeDegraded(mutated, &report);
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  EXPECT_EQ(report.members_total, 2u);
  EXPECT_EQ(report.members_loaded, 1u);
  EXPECT_TRUE(report.degraded());
  EXPECT_GT(report.coverage, 0.0);
  EXPECT_LT(report.coverage, 1.0);
  ASSERT_EQ(report.member_errors.size(), 1u);
  EXPECT_NE(report.member_errors[0].find("member-0000"), std::string::npos);

  util::Rng rng(4);
  auto sample = (*degraded)->Generate(200, vae::kTPlusInf, rng);
  EXPECT_EQ(sample.num_rows(), 200u);

  // A corrupt weights section is not recoverable: every member's mixture
  // share is gone.
  std::vector<uint8_t> bad_weights = bytes;
  bad_weights[SectionOffset(bytes, "weights")] ^= 0x01;
  EXPECT_FALSE(
      ensemble::EnsembleModel::DeserializeDegraded(bad_weights, &report)
          .ok());
}

TEST(SerializeFuzzTest, SaveLoadRoundTripIsBitIdenticalAtAnyThreadCount) {
  auto model = TrainTinyVae(17);
  ASSERT_TRUE(model.ok());
  const std::vector<uint8_t> bytes = (*model)->Serialize();
  auto reloaded = vae::VaeAqpModel::Deserialize(bytes);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  // Re-serializing the loaded model reproduces the file byte for byte.
  EXPECT_EQ((*reloaded)->Serialize(), bytes);

  for (int threads : {1, 4}) {
    util::SetGlobalThreads(threads);
    util::Rng rng_a(123);
    util::Rng rng_b(123);
    relation::Table a = (*model)->Generate(700, (*model)->default_t(), rng_a);
    relation::Table b =
        (*reloaded)->Generate(700, (*reloaded)->default_t(), rng_b);
    ExpectTablesIdentical(a, b);
  }
  util::SetGlobalThreads(0);
}

TEST(SerializeFuzzTest, EnsembleRoundTripIsBitIdentical) {
  auto ens = TrainTinyEnsemble();
  ASSERT_TRUE(ens.ok()) << ens.status().ToString();
  const std::vector<uint8_t> bytes = (*ens)->Serialize();
  auto reloaded = ensemble::EnsembleModel::Deserialize(bytes);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  EXPECT_EQ((*reloaded)->Serialize(), bytes);

  util::Rng rng_a(55);
  util::Rng rng_b(55);
  relation::Table a = (*ens)->Generate(400, vae::kTPlusInf, rng_a);
  relation::Table b = (*reloaded)->Generate(400, vae::kTPlusInf, rng_b);
  ExpectTablesIdentical(a, b);
}

TEST(SerializeFuzzTest, BitFlippedEncoderHeadersFailOrStayConsistent) {
  auto table = data::GenerateTaxi({.rows = 300, .seed = 6});
  auto enc = encoding::TupleEncoder::Fit(table, {});
  ASSERT_TRUE(enc.ok());
  util::ByteWriter w;
  enc->Serialize(w);
  std::vector<uint8_t> bytes = w.bytes();
  util::Rng rng(88);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<uint8_t> mutated = bytes;
    mutated[rng.NextIndex(mutated.size())] ^=
        static_cast<uint8_t>(1u << rng.NextIndex(8));
    util::ByteReader r(mutated);
    auto back = encoding::TupleEncoder::Deserialize(r);
    // Either a clean error, or a structurally consistent encoder.
    if (back.ok()) {
      size_t offset = 0;
      for (const auto& layout : back->layout()) {
        EXPECT_EQ(layout.offset, offset);
        offset += layout.width;
      }
      EXPECT_EQ(back->encoded_dim(), offset);
    }
  }
}

}  // namespace
}  // namespace deepaqp
