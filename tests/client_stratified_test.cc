#include <cmath>

#include <gtest/gtest.h>

#include "aqp/executor.h"
#include "aqp/metrics.h"
#include "baselines/stratified.h"
#include "data/generators.h"
#include "vae/client.h"

namespace deepaqp {
namespace {

vae::VaeAqpOptions FastOptions() {
  vae::VaeAqpOptions opts;
  opts.epochs = 10;
  opts.hidden_dim = 48;
  opts.seed = 81;
  opts.encoder.numeric_bins = 16;
  return opts;
}

TEST(AqpClientTest, OpensFromBytesAndAnswersSql) {
  auto table = data::GenerateTaxi({.rows = 5000, .seed = 1});
  auto model = vae::VaeAqpModel::Train(table, FastOptions());
  ASSERT_TRUE(model.ok());
  vae::AqpClient::Options copts;
  copts.population_rows = table.num_rows();
  copts.initial_samples = 1500;
  auto client = vae::AqpClient::Open((*model)->Serialize(), copts);
  ASSERT_TRUE(client.ok());
  EXPECT_EQ((*client)->pool_size(), 1500u);

  auto result = (*client)->Query("SELECT AVG(fare) FROM R");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  aqp::AggregateQuery q;
  q.agg = aqp::AggFunc::kAvg;
  q.measure_attr = table.schema().IndexOf("fare");
  const double truth = aqp::ExecuteExact(q, table)->Scalar();
  EXPECT_LT(aqp::RelativeError(result->Scalar(), truth), 0.4);
}

TEST(AqpClientTest, SqlLabelsResolveThroughShippedDictionaries) {
  auto table = data::GenerateTaxi({.rows = 3000, .seed = 2});
  auto model = vae::VaeAqpModel::Train(table, FastOptions());
  ASSERT_TRUE(model.ok());
  auto client = vae::AqpClient::Wrap(std::move(model).value(), {});
  auto result = client->Query(
      "SELECT COUNT(*) FROM R WHERE pickup_borough = 'Manhattan'");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->Scalar(), 0.0);
}

TEST(AqpClientTest, BadSqlSurfacesParserError) {
  auto table = data::GenerateTaxi({.rows = 1000, .seed = 3});
  auto model = vae::VaeAqpModel::Train(table, FastOptions());
  ASSERT_TRUE(model.ok());
  auto client = vae::AqpClient::Wrap(std::move(model).value(), {});
  EXPECT_FALSE(client->Query("SELECT MAX(fare) FROM R").ok());
  EXPECT_FALSE(client->Query("garbage").ok());
}

TEST(AqpClientTest, PrecisionOnDemandGrowsPool) {
  auto table = data::GenerateTaxi({.rows = 6000, .seed = 4});
  auto model = vae::VaeAqpModel::Train(table, FastOptions());
  ASSERT_TRUE(model.ok());
  vae::AqpClient::Options copts;
  copts.population_rows = table.num_rows();
  copts.initial_samples = 200;
  copts.max_samples = 20000;
  auto client = vae::AqpClient::Wrap(std::move(model).value(), copts);

  aqp::AggregateQuery q;
  q.agg = aqp::AggFunc::kAvg;
  q.measure_attr = table.schema().IndexOf("fare");
  const size_t before = client->pool_size();
  auto result = client->QueryWithMaxRelativeCi(q, 0.02);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(client->pool_size(), before);
  const auto& g = result->groups[0];
  EXPECT_LE(g.ci_half_width / std::abs(g.value), 0.02 + 1e-9);
}

TEST(AqpClientTest, PoolGrowthRespectsCap) {
  auto table = data::GenerateTaxi({.rows = 2000, .seed = 5});
  auto model = vae::VaeAqpModel::Train(table, FastOptions());
  ASSERT_TRUE(model.ok());
  vae::AqpClient::Options copts;
  copts.initial_samples = 100;
  copts.max_samples = 400;
  auto client = vae::AqpClient::Wrap(std::move(model).value(), copts);
  aqp::AggregateQuery q;
  q.agg = aqp::AggFunc::kAvg;
  q.measure_attr = table.schema().IndexOf("fare");
  // Unreachable precision: growth must stop at the cap, not loop forever.
  auto result = client->QueryWithMaxRelativeCi(q, 1e-9);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(client->pool_size(), 400u);
}

TEST(StratifiedTest, BuildValidatesInputs) {
  auto table = data::GenerateTaxi({.rows = 1000, .seed = 6});
  baselines::StratifiedSample::Options opts;
  opts.strata_attr = 99;
  EXPECT_FALSE(baselines::StratifiedSample::Build(table, opts).ok());
  opts = {};
  opts.strata_attr = static_cast<size_t>(
      table.schema().IndexOf("fare"));  // numeric
  EXPECT_FALSE(baselines::StratifiedSample::Build(table, opts).ok());
  opts = {};
  opts.senate_fraction = 2.0;
  EXPECT_FALSE(baselines::StratifiedSample::Build(table, opts).ok());
}

TEST(StratifiedTest, SenateAllocationCoversMinorityStrata) {
  auto table = data::GenerateTaxi({.rows = 10000, .seed = 7});
  baselines::StratifiedSample::Options opts;
  opts.strata_attr = 0;  // borough, heavily skewed to Manhattan
  opts.sample_rows = 500;
  opts.senate_fraction = 1.0;  // equal allocation
  auto strat = baselines::StratifiedSample::Build(table, opts);
  ASSERT_TRUE(strat.ok());
  // Every borough should get ~100 rows; Staten Island (~3%) would get ~15
  // in a uniform 500-row sample.
  std::vector<int> counts(5, 0);
  for (size_t r = 0; r < strat->sample().num_rows(); ++r) {
    ++counts[strat->sample().CatCode(r, 0)];
  }
  for (int c : counts) EXPECT_GE(c, 60);
}

TEST(StratifiedTest, WeightsRecoverPopulationTotals) {
  auto table = data::GenerateTaxi({.rows = 8000, .seed = 8});
  baselines::StratifiedSample::Options opts;
  opts.strata_attr = 0;
  opts.sample_rows = 600;
  opts.senate_fraction = 0.7;
  auto strat = baselines::StratifiedSample::Build(table, opts);
  ASSERT_TRUE(strat.ok());
  double total_weight = 0.0;
  for (double w : strat->weights()) total_weight += w;
  // Horvitz-Thompson: weights sum to the population size.
  EXPECT_NEAR(total_weight, 8000.0, 8000.0 * 0.02);
}

TEST(StratifiedTest, UniformLikeResampleIsUnbiased) {
  auto table = data::GenerateTaxi({.rows = 10000, .seed = 9});
  baselines::StratifiedSample::Options opts;
  opts.strata_attr = 0;
  opts.sample_rows = 1500;
  opts.senate_fraction = 1.0;  // most distorted allocation
  auto strat = baselines::StratifiedSample::Build(table, opts);
  ASSERT_TRUE(strat.ok());
  util::Rng rng(10);
  auto resample = strat->ResampleUniformLike(8000, rng);
  // Weighted resampling must undo the senate distortion: the Manhattan
  // fraction should match the population again.
  auto frac = [](const relation::Table& t, int32_t code) {
    size_t hits = 0;
    for (size_t r = 0; r < t.num_rows(); ++r) {
      hits += t.CatCode(r, 0) == code;
    }
    return static_cast<double>(hits) / t.num_rows();
  };
  EXPECT_NEAR(frac(resample, 0), frac(table, 0), 0.05);

  // And the harness-facing sampler produces working estimates.
  aqp::AggregateQuery q;
  q.agg = aqp::AggFunc::kAvg;
  q.measure_attr = table.schema().IndexOf("fare");
  const double truth = aqp::ExecuteExact(q, table)->Scalar();
  const double est = aqp::ExecuteExact(q, resample)->Scalar();
  EXPECT_LT(aqp::RelativeError(est, truth), 0.1);
}

}  // namespace
}  // namespace deepaqp
