// The quantized decoder backend's contract (kernels_quant.{h,cc}):
//  * fp16 conversion round-trip bounds (exact widening, RNE narrowing
//    within 2^-11 relative for normal values, inf/NaN preserved);
//  * int8 per-channel quantization round-trip within half a quantization
//    step of the fp32 weights;
//  * int8 / fp16 forward vs the fp32 fused path on a shape sweep that
//    straddles every panel boundary (including K not divisible by the
//    4-byte k-group and N not divisible by the 8-column panel);
//  * int8 bit-identity between the scalar oracle and the SIMD kernel, and
//    bit-identity of both modes across thread counts (same determinism
//    contract as the fp32 kernels);
//  * masked-CPU fallback (DEEPAQP_CPU_DISABLE semantics via
//    SetCpuFeaturesForTest): int8 results are bit-identical with and
//    without the vector ISA, fp16 stays within the FMA-contraction
//    envelope;
//  * mode selection API: ParseQuantMode / SetQuantMode / ActiveQuantMode
//    round-trips and rejects garbage;
//  * the QuantizeSequential plan reproduces InferenceForwardInto's fusion
//    schedule (plan forward == manually chained per-step forwards) and
//    falls back with Unimplemented on unsupported layer patterns;
//  * a seeded end-to-end drift gate: generation under fp16/int8 moves
//    fig2-style COUNT/SUM/AVG estimates by at most a small relative bound
//    vs fp32, and DEEPAQP_QUANT=off with a prepared-but-inactive plan stays
//    bit-identical to the plain fp32 run.

#include "nn/kernels_quant.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "aqp/executor.h"
#include "aqp/query.h"
#include "data/generators.h"
#include "nn/arena.h"
#include "nn/kernels.h"
#include "nn/kernels_quant_internal.h"
#include "nn/layers.h"
#include "nn/matrix.h"
#include "util/cpu_features.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/thread_pool.h"
#include "vae/vae_model.h"

namespace deepaqp::nn {
namespace {

Matrix RandomMatrix(size_t rows, size_t cols, util::Rng& rng) {
  Matrix m(rows, cols);
  for (size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng.NextGaussian());
  }
  return m;
}

Matrix Abs(const Matrix& m) {
  Matrix out(m.rows(), m.cols());
  for (size_t i = 0; i < m.size(); ++i) out.data()[i] = std::abs(m.data()[i]);
  return out;
}

/// Same forward-error-normalized metric as the fp32 kernel tests: max
/// |want - got| / (1 + (|A| @ |W|)_ij) — the natural scale for errors a
/// quantized accumulation may introduce.
double NormalizedError(const Matrix& x, const Matrix& w, const Matrix& want,
                       const Matrix& got) {
  EXPECT_EQ(want.rows(), got.rows());
  EXPECT_EQ(want.cols(), got.cols());
  Matrix mag;
  ReferenceGemm(Abs(x), false, Abs(w), false, 1.0f, 0.0f, &mag);
  double worst = 0.0;
  for (size_t i = 0; i < want.size(); ++i) {
    worst = std::max(worst,
                     std::abs(static_cast<double>(want.data()[i]) -
                              static_cast<double>(got.data()[i])) /
                         (1.0 + mag.data()[i]));
  }
  return worst;
}

bool BitIdentical(const Matrix& a, const Matrix& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

/// Documented per-mode error envelope vs fp32, in the normalized metric:
/// int8 carries 8-bit weight + activation rounding (~2/127 worst case),
/// fp16 only the 2^-11 weight rounding.
double ModeTolerance(QuantMode mode) {
  return mode == QuantMode::kInt8 ? 0.03 : 2e-3;
}

TEST(QuantConvertTest, Fp16RoundTripBounds) {
  // Exactly representable values survive a full round-trip bit-for-bit.
  for (float v : {0.0f, 1.0f, -1.0f, 0.5f, -2.0f, 1024.0f, 0.09375f}) {
    EXPECT_EQ(HalfToFloat(FloatToHalf(v)), v) << v;
  }
  // Normal-range values: RNE narrowing is within 2^-11 relative.
  util::Rng rng(11);
  for (int i = 0; i < 2000; ++i) {
    const float v = static_cast<float>(rng.NextGaussian() * 8.0);
    const float back = HalfToFloat(FloatToHalf(v));
    EXPECT_LE(std::abs(back - v), std::abs(v) * (1.0f / 2048.0f) + 1e-7f)
        << v;
  }
  // Specials.
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_EQ(HalfToFloat(FloatToHalf(inf)), inf);
  EXPECT_EQ(HalfToFloat(FloatToHalf(-inf)), -inf);
  EXPECT_TRUE(std::isnan(HalfToFloat(FloatToHalf(
      std::numeric_limits<float>::quiet_NaN()))));
  // Values beyond half range saturate to infinity, not garbage.
  EXPECT_EQ(HalfToFloat(FloatToHalf(1e20f)), inf);
  // Subnormal halves still round-trip monotonically (exact widening).
  const float tiny = 6e-8f;  // below the smallest normal half
  const float back = HalfToFloat(FloatToHalf(tiny));
  EXPECT_GE(back, 0.0f);
  EXPECT_LE(std::abs(back - tiny), 6e-8f);
}

TEST(QuantizeLinearTest, Int8RoundTripWithinHalfStep) {
  util::Rng rng(21);
  const Matrix w = RandomMatrix(37, 29, rng);
  const Matrix bias = RandomMatrix(1, 29, rng);
  QuantizedLinear q;
  ASSERT_TRUE(QuantizeLinear(w, bias, QuantMode::kInt8, &q).ok());
  ASSERT_EQ(q.scale.size(), w.cols());
  for (size_t j = 0; j < w.cols(); ++j) {
    float amax = 0.0f;
    for (size_t k = 0; k < w.rows(); ++k) {
      amax = std::max(amax, std::abs(w.At(k, j)));
    }
    EXPECT_NEAR(q.scale[j], amax / 127.0f, 1e-9f);
    // Recover each quantized weight from the packed panel layout and check
    // the round-trip is within half a quantization step.
    const size_t kgroups = (w.rows() + internal::kQKg - 1) / internal::kQKg;
    for (size_t k = 0; k < w.rows(); ++k) {
      const size_t p = j / internal::kQNr, jr = j % internal::kQNr;
      const size_t g = k / internal::kQKg, kk = k % internal::kQKg;
      const int8_t qv =
          q.weight_i8[(p * kgroups + g) * (internal::kQNr * internal::kQKg) +
                      jr * internal::kQKg + kk];
      EXPECT_LE(std::abs(static_cast<float>(qv) * q.scale[j] - w.At(k, j)),
                0.5f * q.scale[j] + 1e-6f)
          << "k=" << k << " j=" << j;
    }
  }
  // Non-finite weights are refused, not quantized into garbage.
  Matrix bad = w;
  bad.data()[5] = std::numeric_limits<float>::quiet_NaN();
  QuantizedLinear qbad;
  EXPECT_FALSE(QuantizeLinear(bad, bias, QuantMode::kInt8, &qbad).ok());
}

TEST(QuantForwardTest, ShapeSweepMatchesFp32) {
  util::Rng rng(31);
  for (QuantMode mode : {QuantMode::kFp16, QuantMode::kInt8}) {
    for (size_t m : {size_t{1}, size_t{3}, size_t{4}, size_t{5}, size_t{33}}) {
      for (size_t k :
           {size_t{1}, size_t{2}, size_t{5}, size_t{31}, size_t{32},
            size_t{257}}) {
        for (size_t n : {size_t{1}, size_t{7}, size_t{8}, size_t{9},
                         size_t{33}}) {
          const Matrix x = RandomMatrix(m, k, rng);
          const Matrix w = RandomMatrix(k, n, rng);
          const Matrix bias = RandomMatrix(1, n, rng);
          Matrix want;
          FusedLinearForward(x, w, bias, Activation::kRelu, 0.0f, &want);
          QuantizedLinear q;
          ASSERT_TRUE(QuantizeLinear(w, bias, mode, &q).ok());
          Matrix got;
          QuantizedLinearForward(x, q, Activation::kRelu, 0.0f, &got);
          EXPECT_LE(NormalizedError(x, w, want, got), ModeTolerance(mode))
              << QuantModeName(mode) << " m=" << m << " k=" << k
              << " n=" << n;
        }
      }
    }
  }
}

TEST(QuantForwardTest, Int8ScalarOracleBitIdenticalToSimd) {
  if (!QuantSimdAvailable(QuantMode::kInt8)) {
    GTEST_SKIP() << "quant simd unavailable on this machine (cpu: "
                 << util::CpuFeaturesToString(util::CpuInfo()) << ")";
  }
  util::Rng rng(41);
  for (size_t m : {size_t{1}, size_t{5}, size_t{33}}) {
    for (size_t k : {size_t{1}, size_t{31}, size_t{257}}) {
      for (size_t n : {size_t{1}, size_t{9}, size_t{33}}) {
        const Matrix x = RandomMatrix(m, k, rng);
        const Matrix w = RandomMatrix(k, n, rng);
        const Matrix bias = RandomMatrix(1, n, rng);
        QuantizedLinear q;
        ASSERT_TRUE(QuantizeLinear(w, bias, QuantMode::kInt8, &q).ok());
        Matrix scalar_out, simd_out;
        internal::QuantizedLinearForwardImpl(x, q, Activation::kRelu, 0.0f,
                                             &scalar_out,
                                             /*use_simd=*/false);
        internal::QuantizedLinearForwardImpl(x, q, Activation::kRelu, 0.0f,
                                             &simd_out, /*use_simd=*/true);
        EXPECT_TRUE(BitIdentical(scalar_out, simd_out))
            << "m=" << m << " k=" << k << " n=" << n;
      }
    }
  }
}

TEST(QuantForwardTest, BitIdenticalAcrossThreadCounts) {
  util::Rng rng(51);
  // Big enough to clear the parallel cutoff with several row blocks.
  const Matrix x = RandomMatrix(200, 96, rng);
  const Matrix w = RandomMatrix(96, 80, rng);
  const Matrix bias = RandomMatrix(1, 80, rng);
  const int prev = util::GlobalThreads();
  for (QuantMode mode : {QuantMode::kFp16, QuantMode::kInt8}) {
    QuantizedLinear q;
    ASSERT_TRUE(QuantizeLinear(w, bias, mode, &q).ok());
    util::SetGlobalThreads(1);
    Matrix serial;
    QuantizedLinearForward(x, q, Activation::kRelu, 0.0f, &serial);
    for (int threads : {4, 8}) {
      util::SetGlobalThreads(threads);
      Matrix parallel;
      QuantizedLinearForward(x, q, Activation::kRelu, 0.0f, &parallel);
      EXPECT_TRUE(BitIdentical(serial, parallel))
          << QuantModeName(mode) << " threads=" << threads;
    }
  }
  util::SetGlobalThreads(prev);
}

TEST(QuantForwardTest, MaskedCpuFallsBackToScalarPath) {
  const bool had_simd = QuantSimdAvailable(QuantMode::kInt8);
  util::Rng rng(61);
  const Matrix x = RandomMatrix(19, 45, rng);
  const Matrix w = RandomMatrix(45, 23, rng);
  const Matrix bias = RandomMatrix(1, 23, rng);
  QuantizedLinear q8, q16;
  ASSERT_TRUE(QuantizeLinear(w, bias, QuantMode::kInt8, &q8).ok());
  ASSERT_TRUE(QuantizeLinear(w, bias, QuantMode::kFp16, &q16).ok());
  Matrix full8, full16;
  QuantizedLinearForward(x, q8, Activation::kRelu, 0.0f, &full8);
  QuantizedLinearForward(x, q16, Activation::kRelu, 0.0f, &full16);

  // The DEEPAQP_CPU_DISABLE mechanism: present the kernels with a CPU that
  // has no vector ISA and re-run on the same packed weights.
  util::CpuFeatures none;
  util::SetCpuFeaturesForTest(&none);
  EXPECT_FALSE(QuantSimdAvailable(QuantMode::kInt8));
  EXPECT_FALSE(QuantSimdAvailable(QuantMode::kFp16));
  Matrix masked8, masked16;
  QuantizedLinearForward(x, q8, Activation::kRelu, 0.0f, &masked8);
  QuantizedLinearForward(x, q16, Activation::kRelu, 0.0f, &masked16);
  util::SetCpuFeaturesForTest(nullptr);

  // int8 accumulates exactly in integers: masking the ISA must not change
  // a single bit. fp16 swaps FMA contraction for separate mul/add, so it
  // only promises the usual contraction envelope.
  EXPECT_TRUE(BitIdentical(full8, masked8));
  EXPECT_LE(NormalizedError(x, w, full16, masked16), 1e-4);
  EXPECT_EQ(QuantSimdAvailable(QuantMode::kInt8), had_simd);
}

TEST(QuantModeTest, ParseAndSetRoundTrip) {
  QuantMode mode = QuantMode::kOff;
  ASSERT_TRUE(ParseQuantMode("fp16", &mode).ok());
  EXPECT_EQ(mode, QuantMode::kFp16);
  ASSERT_TRUE(ParseQuantMode("int8", &mode).ok());
  EXPECT_EQ(mode, QuantMode::kInt8);
  ASSERT_TRUE(ParseQuantMode("off", &mode).ok());
  EXPECT_EQ(mode, QuantMode::kOff);
  EXPECT_FALSE(ParseQuantMode("int4", &mode).ok());
  EXPECT_FALSE(ParseQuantMode("", &mode).ok());
  EXPECT_EQ(mode, QuantMode::kOff);  // untouched on error

  EXPECT_STREQ(QuantModeName(QuantMode::kOff), "off");
  EXPECT_STREQ(QuantModeName(QuantMode::kFp16), "fp16");
  EXPECT_STREQ(QuantModeName(QuantMode::kInt8), "int8");

  const QuantMode prev = ActiveQuantMode();
  // The self-check runs the scalar oracle on every machine, so switching
  // into a quantized mode must succeed here (SIMD or not).
  ASSERT_TRUE(SetQuantMode(QuantMode::kInt8).ok());
  EXPECT_EQ(ActiveQuantMode(), QuantMode::kInt8);
  ASSERT_TRUE(SetQuantMode(QuantMode::kOff).ok());
  EXPECT_EQ(ActiveQuantMode(), QuantMode::kOff);
  ASSERT_TRUE(SetQuantMode(prev).ok());
}

TEST(QuantPlanTest, PlanForwardMatchesChainedSteps) {
  util::Rng rng(71);
  Sequential seq;
  seq.Add(std::make_unique<Linear>(13, 24, rng));
  seq.Add(std::make_unique<Relu>());
  // Nested Sequential: the plan builder must flatten it like
  // InferenceForwardInto does.
  auto inner = std::make_unique<Sequential>();
  inner->Add(std::make_unique<Linear>(24, 16, rng));
  inner->Add(std::make_unique<Tanh>());
  seq.Add(std::move(inner));
  seq.Add(std::make_unique<Linear>(16, 7, rng));

  const Matrix x = RandomMatrix(9, 13, rng);
  for (QuantMode mode : {QuantMode::kFp16, QuantMode::kInt8}) {
    QuantizedSequential plan;
    ASSERT_TRUE(QuantizeSequential(seq, mode, &plan).ok());
    ASSERT_EQ(plan.steps.size(), 3u);  // three fused Linear(+act) steps
    EXPECT_EQ(plan.steps[0].act, Activation::kRelu);
    EXPECT_EQ(plan.steps[1].act, Activation::kTanh);
    EXPECT_EQ(plan.steps[2].act, Activation::kIdentity);

    Matrix plan_out;
    ScratchArena arena;
    QuantizedInferenceForwardInto(plan, x, &plan_out, &arena);

    Matrix cur = x;
    for (const QuantizedSequential::Step& step : plan.steps) {
      Matrix next;
      QuantizedLinearForward(cur, step.linear, step.act, step.leaky_slope,
                             &next);
      cur = std::move(next);
    }
    EXPECT_TRUE(BitIdentical(plan_out, cur)) << QuantModeName(mode);

    // Sanity: the plan's numbers track the fp32 network on the same input.
    Matrix fp32_out;
    InferenceForwardInto(seq, x, &fp32_out, &arena);
    ASSERT_EQ(fp32_out.rows(), plan_out.rows());
    ASSERT_EQ(fp32_out.cols(), plan_out.cols());
    double worst = 0.0;
    for (size_t i = 0; i < fp32_out.size(); ++i) {
      worst = std::max(worst,
                       std::abs(static_cast<double>(fp32_out.data()[i]) -
                                static_cast<double>(plan_out.data()[i])));
    }
    EXPECT_LE(worst, mode == QuantMode::kInt8 ? 0.5 : 0.02)
        << QuantModeName(mode);
  }

  // Unsupported pattern (activation with no preceding Linear) falls back
  // with Unimplemented so callers keep the fp32 path.
  Sequential odd;
  odd.Add(std::make_unique<Relu>());
  odd.Add(std::make_unique<Linear>(4, 4, rng));
  QuantizedSequential plan;
  EXPECT_EQ(QuantizeSequential(odd, QuantMode::kInt8, &plan).code(),
            util::StatusCode::kUnimplemented);
}

// --- End-to-end drift gate -------------------------------------------------

struct Estimates {
  double count = 0.0;
  double sum = 0.0;
  double avg = 0.0;
};

/// Fig. 2-style scalar aggregates over a generated sample (census attr 8 =
/// age, 13 = hours_per_week; same queries as nn_simd_backend_test.cc).
Estimates RunAggregates(const relation::Table& sample) {
  aqp::Predicate working_age;
  working_age.conditions.push_back(
      {/*attr=*/8, aqp::CmpOp::kGe, /*value=*/25.0});
  working_age.conditions.push_back(
      {/*attr=*/8, aqp::CmpOp::kLe, /*value=*/55.0});

  Estimates out;
  aqp::AggregateQuery q;
  q.filter = working_age;

  q.agg = aqp::AggFunc::kCount;
  auto count = aqp::ExecuteExact(q, sample);
  EXPECT_TRUE(count.ok());
  out.count = (*count).Scalar();

  q.agg = aqp::AggFunc::kSum;
  q.measure_attr = 13;
  auto sum = aqp::ExecuteExact(q, sample);
  EXPECT_TRUE(sum.ok());
  out.sum = (*sum).Scalar();

  q.agg = aqp::AggFunc::kAvg;
  q.measure_attr = 8;
  auto avg = aqp::ExecuteExact(q, sample);
  EXPECT_TRUE(avg.ok());
  out.avg = (*avg).Scalar();
  return out;
}

double RelDiff(double a, double b) {
  return std::abs(a - b) / std::max(1.0, std::max(std::abs(a), std::abs(b)));
}

TEST(QuantEndToEndTest, SamplingEstimatesDriftWithinBound) {
  // One seeded model, one seeded RNG per run; the only variable is the
  // decoder quantization mode. Quantization perturbs each logit by O(1/127)
  // at worst, which can flip a handful of near-threshold decode decisions —
  // aggregate estimates must not move beyond this bound (a real kernel bug
  // shows up as O(1) drift).
  constexpr double kDriftBound = 0.05;

  const relation::Table table =
      data::GenerateCensus({.rows = 3000, .seed = 71});
  vae::VaeAqpOptions options;
  options.epochs = 3;
  options.hidden_dim = 32;
  options.seed = 20250807;
  const QuantMode prev = ActiveQuantMode();
  ASSERT_TRUE(SetQuantMode(QuantMode::kOff).ok());
  auto model = vae::VaeAqpModel::Train(table, options);
  ASSERT_TRUE(model.ok()) << model.status().ToString();

  const size_t n = 4000;
  util::Rng rng_base(4242);
  const Estimates fp32_est =
      RunAggregates((*model)->Generate(n, vae::kTPlusInf, rng_base));
  EXPECT_GT(fp32_est.count, 0.0);

  for (QuantMode mode : {QuantMode::kFp16, QuantMode::kInt8}) {
    ASSERT_TRUE(SetQuantMode(mode).ok());
    ASSERT_TRUE((*model)->PrepareQuantized(mode).ok());
    EXPECT_EQ((*model)->prepared_quant_mode(), mode);
    util::Rng rng(4242);
    const Estimates est =
        RunAggregates((*model)->Generate(n, vae::kTPlusInf, rng));
    EXPECT_LE(RelDiff(fp32_est.count, est.count), kDriftBound)
        << QuantModeName(mode) << " COUNT: fp32=" << fp32_est.count
        << " quant=" << est.count;
    EXPECT_LE(RelDiff(fp32_est.sum, est.sum), kDriftBound)
        << QuantModeName(mode) << " SUM: fp32=" << fp32_est.sum
        << " quant=" << est.sum;
    EXPECT_LE(RelDiff(fp32_est.avg, est.avg), kDriftBound)
        << QuantModeName(mode) << " AVG: fp32=" << fp32_est.avg
        << " quant=" << est.avg;
    EXPECT_GT(est.count, 0.0);
  }

  // A prepared-but-inactive plan must leave the fp32 path bit-identical:
  // DEEPAQP_QUANT=off means exactly the PR 7 behavior even though the
  // model still carries an int8 plan.
  ASSERT_TRUE(SetQuantMode(QuantMode::kOff).ok());
  EXPECT_EQ((*model)->prepared_quant_mode(), QuantMode::kInt8);
  util::Rng rng_off(4242);
  const Estimates off_est =
      RunAggregates((*model)->Generate(n, vae::kTPlusInf, rng_off));
  EXPECT_EQ(off_est.count, fp32_est.count);
  EXPECT_EQ(off_est.sum, fp32_est.sum);
  EXPECT_EQ(off_est.avg, fp32_est.avg);
  ASSERT_TRUE(SetQuantMode(prev).ok());
}

}  // namespace
}  // namespace deepaqp::nn
