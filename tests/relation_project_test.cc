#include <gtest/gtest.h>

#include "aqp/executor.h"
#include "data/generators.h"
#include "relation/table.h"

namespace deepaqp::relation {
namespace {

TEST(ProjectTest, KeepsColumnsInRequestedOrder) {
  auto table = data::GenerateTaxi({.rows = 500, .seed = 1});
  const auto fare = static_cast<size_t>(table.schema().IndexOf("fare"));
  auto projected = table.Project({fare, 0});
  ASSERT_EQ(projected.num_attributes(), 2u);
  EXPECT_EQ(projected.schema().attribute(0).name, "fare");
  EXPECT_EQ(projected.schema().attribute(1).name, "pickup_borough");
  ASSERT_EQ(projected.num_rows(), table.num_rows());
  for (size_t r = 0; r < 50; ++r) {
    EXPECT_EQ(projected.NumValue(r, 0), table.NumValue(r, fare));
    EXPECT_EQ(projected.CatCode(r, 1), table.CatCode(r, 0));
  }
}

TEST(ProjectTest, CarriesDictionariesAndCardinality) {
  auto table = data::GenerateTaxi({.rows = 300, .seed = 2});
  auto projected = table.Project({0});
  EXPECT_EQ(projected.Cardinality(0), table.Cardinality(0));
  EXPECT_EQ(projected.dict(0).LabelOf(0), table.dict(0).LabelOf(0));
}

TEST(ProjectTest, DuplicateColumnsAreRejectedBySchema) {
  // Projecting the same attribute twice would create duplicate names; the
  // schema invariant forbids it, so this is a programming error (death).
  auto table = data::GenerateTaxi({.rows = 10, .seed = 3});
  EXPECT_DEATH(table.Project({0, 0}), "Check failed");
}

TEST(ProjectTest, QueriesOnProjectionMatchRemappedQueriesOnBase) {
  // The exact invariant the Fig. 11 per-template MSPN path relies on.
  auto table = data::GenerateCensus({.rows = 4000, .seed = 4});
  const auto sex = static_cast<size_t>(table.schema().IndexOf("sex"));
  const auto age = static_cast<size_t>(table.schema().IndexOf("age"));
  auto projected = table.Project({sex, age});

  aqp::AggregateQuery base;
  base.agg = aqp::AggFunc::kAvg;
  base.measure_attr = static_cast<int>(age);
  base.filter.conditions.push_back({sex, aqp::CmpOp::kEq, 0.0});

  aqp::AggregateQuery remapped;
  remapped.agg = aqp::AggFunc::kAvg;
  remapped.measure_attr = 1;
  remapped.filter.conditions.push_back({0, aqp::CmpOp::kEq, 0.0});

  EXPECT_DOUBLE_EQ(aqp::ExecuteExact(base, table)->Scalar(),
                   aqp::ExecuteExact(remapped, projected)->Scalar());
}

TEST(ProjectTest, EmptyProjectionYieldsRowCountOnly) {
  auto table = data::GenerateTaxi({.rows = 123, .seed = 5});
  auto projected = table.Project({});
  EXPECT_EQ(projected.num_attributes(), 0u);
  EXPECT_EQ(projected.num_rows(), 123u);
}

}  // namespace
}  // namespace deepaqp::relation
