// Unit tests for the versioned, checksummed snapshot container: round
// trips, exhaustive single-bit corruption, truncation, version skew, and
// tolerant (degraded) opening.

#include "util/snapshot.h"

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/crc32.h"
#include "util/serialize.h"

namespace deepaqp::util {
namespace {

std::vector<uint8_t> MakeTwoSectionSnapshot() {
  SnapshotWriter w("test.kind", 3);
  ByteWriter& a = w.AddSection("alpha");
  a.WriteString("hello");
  a.WriteF64(2.5);
  ByteWriter& b = w.AddSection("beta");
  b.WriteI32Vector({1, 2, 3, 4});
  return w.Finish();
}

TEST(Crc32Test, MatchesKnownVectors) {
  // Standard check value for the IEEE CRC-32 of "123456789".
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(Crc32("", 0), 0u);
  // Incremental == one-shot.
  uint32_t inc = Crc32Update(0, "1234", 4);
  inc = Crc32Update(inc, "56789", 5);
  EXPECT_EQ(inc, 0xCBF43926u);
}

TEST(SnapshotTest, RoundTripSectionsAndMetadata) {
  const std::vector<uint8_t> bytes = MakeTwoSectionSnapshot();
  auto snap = SnapshotReader::Open(bytes);
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  EXPECT_EQ(snap->kind(), "test.kind");
  EXPECT_EQ(snap->format_version(), kSnapshotFormatVersion);
  EXPECT_EQ(snap->payload_version(), 3u);
  ASSERT_EQ(snap->sections().size(), 2u);
  EXPECT_TRUE(snap->HasSection("alpha"));
  EXPECT_TRUE(snap->HasSection("beta"));
  EXPECT_FALSE(snap->HasSection("gamma"));
  EXPECT_EQ(snap->stats().total_bytes, bytes.size());
  EXPECT_TRUE(snap->stats().file_checksum_ok);

  auto a = snap->Section("alpha");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(*a->ReadString(), "hello");
  EXPECT_EQ(*a->ReadF64(), 2.5);
  EXPECT_TRUE(a->AtEnd());

  auto b = snap->Section("beta");
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->ReadI32Vector()->size(), 4u);

  auto missing = snap->Section("gamma");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

TEST(SnapshotTest, EverySingleBitFlipIsRejectedByStrictOpen) {
  const std::vector<uint8_t> bytes = MakeTwoSectionSnapshot();
  for (size_t byte = 0; byte < bytes.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<uint8_t> mutated = bytes;
      mutated[byte] ^= static_cast<uint8_t>(1u << bit);
      auto snap = SnapshotReader::Open(mutated);
      EXPECT_FALSE(snap.ok())
          << "flip at byte " << byte << " bit " << bit << " was accepted";
    }
  }
}

TEST(SnapshotTest, EveryTruncationIsRejectedByStrictOpen) {
  const std::vector<uint8_t> bytes = MakeTwoSectionSnapshot();
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    std::vector<uint8_t> truncated(bytes.begin(), bytes.begin() + cut);
    auto snap = SnapshotReader::Open(truncated);
    EXPECT_FALSE(snap.ok()) << "cut at " << cut << " was accepted";
  }
}

TEST(SnapshotTest, FutureFormatVersionIsDiagnosed) {
  SnapshotWriter w("test.kind", 1, kSnapshotFormatVersion + 1);
  w.AddSection("alpha").WriteU32(7);
  auto snap = SnapshotReader::Open(w.Finish());
  ASSERT_FALSE(snap.ok());
  EXPECT_NE(snap.status().message().find("format version"),
            std::string::npos)
      << snap.status().ToString();
}

TEST(SnapshotTest, ForeignBytesAreDiagnosedAsBadMagic) {
  std::vector<uint8_t> junk(64, 0xAB);
  auto snap = SnapshotReader::Open(junk);
  ASSERT_FALSE(snap.ok());
  EXPECT_NE(snap.status().message().find("magic"), std::string::npos);
}

TEST(SnapshotTest, TolerantOpenSalvagesIntactSections) {
  const std::vector<uint8_t> bytes = MakeTwoSectionSnapshot();
  auto clean = SnapshotReader::Open(bytes);
  ASSERT_TRUE(clean.ok());
  // Corrupt one payload byte of "beta"; "alpha" must stay readable.
  size_t beta_offset = 0;
  for (const auto& s : clean->sections()) {
    if (s.name == "beta") beta_offset = s.offset;
  }
  ASSERT_GT(beta_offset, 0u);
  std::vector<uint8_t> mutated = bytes;
  mutated[beta_offset] ^= 0x01;

  EXPECT_FALSE(SnapshotReader::Open(mutated).ok());
  auto snap = SnapshotReader::OpenTolerant(mutated);
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  EXPECT_FALSE(snap->stats().file_checksum_ok);

  auto a = snap->Section("alpha");
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  EXPECT_EQ(*a->ReadString(), "hello");

  auto b = snap->Section("beta");
  ASSERT_FALSE(b.ok());
  EXPECT_EQ(b.status().code(), StatusCode::kIOError);
}

TEST(SnapshotTest, TolerantOpenReportsTruncatedSections) {
  const std::vector<uint8_t> bytes = MakeTwoSectionSnapshot();
  auto clean = SnapshotReader::Open(bytes);
  ASSERT_TRUE(clean.ok());
  size_t beta_offset = 0;
  for (const auto& s : clean->sections()) {
    if (s.name == "beta") beta_offset = s.offset;
  }
  // Cut inside beta's payload: the header/table still verifies, alpha is
  // intact, beta is out of bounds.
  std::vector<uint8_t> truncated(bytes.begin(),
                                 bytes.begin() + beta_offset + 1);
  auto snap = SnapshotReader::OpenTolerant(truncated);
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  EXPECT_FALSE(snap->stats().file_checksum_ok);
  EXPECT_TRUE(snap->Section("alpha").ok());
  auto b = snap->Section("beta");
  ASSERT_FALSE(b.ok());
  EXPECT_EQ(b.status().code(), StatusCode::kOutOfRange);
}

TEST(SnapshotTest, TolerantOpenStillRejectsCorruptHeader) {
  std::vector<uint8_t> bytes = MakeTwoSectionSnapshot();
  // Byte 8 is the first format-version byte — a header field.
  bytes[8] ^= 0x40;
  EXPECT_FALSE(SnapshotReader::OpenTolerant(bytes).ok());
}

TEST(AtomicWriteFileTest, WritesAndReplacesWithoutLeavingTemp) {
  const std::string path = testing::TempDir() + "/deepaqp_atomic_test.bin";
  ASSERT_TRUE(AtomicWriteFile(path, {1, 2, 3}).ok());
  ASSERT_TRUE(AtomicWriteFile(path, {4, 5, 6, 7}).ok());
  auto bytes = ReadFile(path);
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(*bytes, (std::vector<uint8_t>{4, 5, 6, 7}));
  // The temp file must not survive a successful write.
  auto tmp = ReadFile(path + ".tmp");
  EXPECT_FALSE(tmp.ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace deepaqp::util
