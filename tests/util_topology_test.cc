// Tests for the topology layer: cpulist parsing, sysfs detection over
// synthetic fixture trees (the build machines are single-node, so every
// multi-node shape here is injected), placement planning, policy parsing,
// pinning degradation, and the node-sharded ParallelFor contract.

#include <atomic>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/flags.h"
#include "util/thread_pool.h"
#include "util/topology.h"

namespace deepaqp::util {
namespace {

namespace fs = std::filesystem;

std::vector<int> Parsed(std::string_view text) {
  std::vector<int> cpus;
  const Status st = ParseCpuList(text, &cpus);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return cpus;
}

TEST(ParseCpuListTest, ValidForms) {
  EXPECT_EQ(Parsed(""), (std::vector<int>{}));
  EXPECT_EQ(Parsed("0"), (std::vector<int>{0}));
  EXPECT_EQ(Parsed("0-3"), (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(Parsed("0-2,8,10-11"), (std::vector<int>{0, 1, 2, 8, 10, 11}));
  EXPECT_EQ(Parsed("0-2,8,10-11\n"), (std::vector<int>{0, 1, 2, 8, 10, 11}));
  EXPECT_EQ(Parsed(" 4 , 2 "), (std::vector<int>{2, 4}));  // sorted
  EXPECT_EQ(Parsed("3,1-3"), (std::vector<int>{1, 2, 3}));  // deduped
}

TEST(ParseCpuListTest, MalformedForms) {
  std::vector<int> cpus{99};
  for (const char* bad : {"x", "1-", "-3", "3-1", "1--2", "1,,2", "0-2000000"}) {
    const Status st = ParseCpuList(bad, &cpus);
    EXPECT_FALSE(st.ok()) << "accepted '" << bad << "'";
    EXPECT_EQ(cpus, (std::vector<int>{99})) << "clobbered on '" << bad << "'";
  }
}

// Builds a synthetic /sys/devices/system-shaped tree under TempDir.
class FixtureTree {
 public:
  explicit FixtureTree(const std::string& name)
      : root_(fs::path(testing::TempDir()) / name) {
    fs::remove_all(root_);
    fs::create_directories(root_);
  }

  const std::string root() const { return root_.string(); }

  void WriteFile(const std::string& rel, const std::string& contents) {
    const fs::path p = root_ / rel;
    fs::create_directories(p.parent_path());
    std::ofstream(p) << contents;
  }

 private:
  fs::path root_;
};

TEST(DetectTopologyTest, TwoNodeMachine) {
  FixtureTree tree("topo_two_node");
  tree.WriteFile("cpu/online", "0-7\n");
  tree.WriteFile("node/online", "0-1\n");
  tree.WriteFile("node/node0/cpulist", "0-3\n");
  tree.WriteFile("node/node1/cpulist", "4-7\n");

  const CpuTopology topo = DetectTopology(tree.root());
  ASSERT_EQ(topo.nodes.size(), 2u);
  EXPECT_TRUE(topo.multi_node());
  EXPECT_EQ(topo.num_cpus(), 8);
  EXPECT_EQ(topo.nodes[0].id, 0);
  EXPECT_EQ(topo.nodes[0].cpus, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(topo.nodes[1].id, 1);
  EXPECT_EQ(topo.nodes[1].cpus, (std::vector<int>{4, 5, 6, 7}));
  EXPECT_NE(topo.ToString().find("2 nodes"), std::string::npos);
}

TEST(DetectTopologyTest, OfflineCpusDropOut) {
  FixtureTree tree("topo_offline");
  tree.WriteFile("cpu/online", "0-2,4\n");  // cpus 3 and 5-7 offline
  tree.WriteFile("node/online", "0-1\n");
  tree.WriteFile("node/node0/cpulist", "0-3\n");
  tree.WriteFile("node/node1/cpulist", "4-7\n");

  const CpuTopology topo = DetectTopology(tree.root());
  ASSERT_EQ(topo.nodes.size(), 2u);
  EXPECT_EQ(topo.nodes[0].cpus, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(topo.nodes[1].cpus, (std::vector<int>{4}));
}

TEST(DetectTopologyTest, NodeWithNoOnlineCpusIsSkipped) {
  FixtureTree tree("topo_empty_node");
  tree.WriteFile("cpu/online", "0-3\n");
  tree.WriteFile("node/online", "0-1\n");
  tree.WriteFile("node/node0/cpulist", "0-3\n");
  tree.WriteFile("node/node1/cpulist", "4-7\n");  // all offline

  const CpuTopology topo = DetectTopology(tree.root());
  ASSERT_EQ(topo.nodes.size(), 1u);
  EXPECT_FALSE(topo.multi_node());
  EXPECT_EQ(topo.nodes[0].cpus, (std::vector<int>{0, 1, 2, 3}));
}

TEST(DetectTopologyTest, MissingNodeDirFallsBackToSingleNode) {
  FixtureTree tree("topo_no_nodes");
  tree.WriteFile("cpu/online", "0-5\n");

  const CpuTopology topo = DetectTopology(tree.root());
  ASSERT_EQ(topo.nodes.size(), 1u);
  EXPECT_EQ(topo.nodes[0].id, 0);
  EXPECT_EQ(topo.nodes[0].cpus, (std::vector<int>{0, 1, 2, 3, 4, 5}));
}

TEST(DetectTopologyTest, FullyMissingTreeStillYieldsACpu) {
  FixtureTree tree("topo_missing");
  const CpuTopology topo = DetectTopology(tree.root() + "/does_not_exist");
  ASSERT_EQ(topo.nodes.size(), 1u);
  EXPECT_GE(topo.num_cpus(), 1);  // hardware_concurrency fallback
}

TEST(DetectTopologyTest, AffinityMaskIntersects) {
  FixtureTree tree("topo_affinity");
  tree.WriteFile("cpu/online", "0-7\n");
  tree.WriteFile("node/online", "0-1\n");
  tree.WriteFile("node/node0/cpulist", "0-3\n");
  tree.WriteFile("node/node1/cpulist", "4-7\n");

  const std::vector<int> allowed = {1, 2, 6};
  const CpuTopology topo = DetectTopology(tree.root(), &allowed);
  ASSERT_EQ(topo.nodes.size(), 2u);
  EXPECT_EQ(topo.nodes[0].cpus, (std::vector<int>{1, 2}));
  EXPECT_EQ(topo.nodes[1].cpus, (std::vector<int>{6}));

  // Mask excluding a whole node collapses the topology to the other node.
  const std::vector<int> node1_only = {5, 7};
  const CpuTopology half = DetectTopology(tree.root(), &node1_only);
  ASSERT_EQ(half.nodes.size(), 1u);
  EXPECT_EQ(half.nodes[0].id, 1);
  EXPECT_EQ(half.nodes[0].cpus, (std::vector<int>{5, 7}));
}

TEST(PinPolicyTest, ParseAndName) {
  PinPolicy policy = PinPolicy::kScatter;
  ASSERT_TRUE(ParsePinPolicy("off", &policy).ok());
  EXPECT_EQ(policy, PinPolicy::kOff);
  ASSERT_TRUE(ParsePinPolicy("compact", &policy).ok());
  EXPECT_EQ(policy, PinPolicy::kCompact);
  ASSERT_TRUE(ParsePinPolicy("scatter", &policy).ok());
  EXPECT_EQ(policy, PinPolicy::kScatter);
  EXPECT_STREQ(PinPolicyName(PinPolicy::kCompact), "compact");

  policy = PinPolicy::kCompact;
  EXPECT_FALSE(ParsePinPolicy("bogus", &policy).ok());
  EXPECT_EQ(policy, PinPolicy::kCompact);  // untouched on error
}

TEST(PinPolicyTest, ApplyPinFlag) {
  const PinPolicy saved = ActivePinPolicy();

  // Flags skips argv[0] (the program name), like main() argv.
  const char* args[] = {"test", "--pin", "scatter"};
  Flags flags(3, const_cast<char**>(args));
  ASSERT_TRUE(ApplyPinFlag(flags).ok());
  EXPECT_EQ(ActivePinPolicy(), PinPolicy::kScatter);

  const char* bad_args[] = {"test", "--pin", "sideways"};
  Flags bad(3, const_cast<char**>(bad_args));
  EXPECT_FALSE(ApplyPinFlag(bad).ok());
  EXPECT_EQ(ActivePinPolicy(), PinPolicy::kScatter);  // unchanged on error

  Flags none(0, nullptr);
  ASSERT_TRUE(ApplyPinFlag(none).ok());  // absent flag: no change
  EXPECT_EQ(ActivePinPolicy(), PinPolicy::kScatter);

  SetPinPolicy(saved);
}

CpuTopology TwoNodeTopology() {
  CpuTopology topo;
  topo.nodes.push_back({.id = 0, .cpus = {0, 1}});
  topo.nodes.push_back({.id = 1, .cpus = {2, 3}});
  return topo;
}

TEST(PlanPlacementTest, OffLeavesLanesUnpinned) {
  const CpuTopology topo = TwoNodeTopology();
  const auto plan = PlanPlacement(topo, PinPolicy::kOff, 4);
  ASSERT_EQ(plan.size(), 4u);
  for (const LanePlacement& lane : plan) {
    EXPECT_EQ(lane.cpu, -1);
    EXPECT_EQ(lane.node, 0);
  }
}

TEST(PlanPlacementTest, CompactFillsNodesInOrder) {
  const CpuTopology topo = TwoNodeTopology();
  const auto plan = PlanPlacement(topo, PinPolicy::kCompact, 6);
  ASSERT_EQ(plan.size(), 6u);
  const int cpus[] = {0, 1, 2, 3, 0, 1};   // wraps past the machine
  const int nodes[] = {0, 0, 1, 1, 0, 0};
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(plan[i].cpu, cpus[i]) << "lane " << i;
    EXPECT_EQ(plan[i].node, nodes[i]) << "lane " << i;
  }
}

TEST(PlanPlacementTest, ScatterRoundRobinsAcrossNodes) {
  const CpuTopology topo = TwoNodeTopology();
  const auto plan = PlanPlacement(topo, PinPolicy::kScatter, 4);
  ASSERT_EQ(plan.size(), 4u);
  const int cpus[] = {0, 2, 1, 3};  // one cpu per node per round
  const int nodes[] = {0, 1, 0, 1};
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(plan[i].cpu, cpus[i]) << "lane " << i;
    EXPECT_EQ(plan[i].node, nodes[i]) << "lane " << i;
  }
}

TEST(PinThreadTest, OutOfRangeCpuDegradesGracefully) {
  EXPECT_FALSE(PinCurrentThread(-1));
  EXPECT_FALSE(PinCurrentThread(1 << 20));
  EXPECT_FALSE(PinCurrentThreadToCpus({}));
}

#if defined(__linux__)
TEST(PinThreadTest, PinAndRestoreOnLinux) {
  const std::vector<int> allowed = AllowedCpus();
  ASSERT_FALSE(allowed.empty());
  // Pinning to a CPU we are already allowed on must succeed outside of
  // pathological seccomp sandboxes; restoring the saved mask undoes it.
  if (PinCurrentThread(allowed.front())) {
    EXPECT_EQ(AllowedCpus(), (std::vector<int>{allowed.front()}));
    EXPECT_TRUE(PinCurrentThreadToCpus(allowed));
    EXPECT_EQ(AllowedCpus(), allowed);
  }
}
#endif

// RAII: inject a synthetic topology + policy, rebuild the pool, restore.
class ScopedTopology {
 public:
  ScopedTopology(const CpuTopology* topo, PinPolicy policy, int threads)
      : saved_policy_(ActivePinPolicy()) {
    SetTopologyForTest(topo);
    SetPinPolicy(policy);
    SetGlobalThreads(threads);
  }
  ~ScopedTopology() {
    SetTopologyForTest(nullptr);
    SetPinPolicy(saved_policy_);
    SetGlobalThreads(0);
  }

 private:
  PinPolicy saved_policy_;
};

TEST(ParallelForShardedTest, VisitsEveryIndexOnceUnderInjectedTopology) {
  const CpuTopology topo = TwoNodeTopology();
  ScopedTopology scope(&topo, PinPolicy::kScatter, 4);

  constexpr size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  ParallelForSharded(0, kN, [&hits](size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForShardedTest, PropagatesExceptions) {
  const CpuTopology topo = TwoNodeTopology();
  ScopedTopology scope(&topo, PinPolicy::kCompact, 4);

  EXPECT_THROW(ParallelForSharded(0, 5000,
                                  [](size_t i) {
                                    if (i == 3777) {
                                      throw std::runtime_error("boom");
                                    }
                                  }),
               std::runtime_error);
}

TEST(ParallelForShardedTest, OffPolicyDelegatesToSingleShard) {
  const CpuTopology topo = TwoNodeTopology();
  ScopedTopology scope(&topo, PinPolicy::kOff, 4);

  std::atomic<size_t> count{0};
  ParallelForSharded(0, 1000, [&count](size_t) {
    count.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(count.load(), 1000u);
}

}  // namespace
}  // namespace deepaqp::util
