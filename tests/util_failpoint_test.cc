// Fail-point registry semantics: spec parsing, trigger modes, the @arg
// filter, deterministic probabilistic draws, counters, and re-arming.

#include "util/failpoint.h"

#include <vector>

#include <gtest/gtest.h>

namespace deepaqp::util {
namespace {

/// Every test leaves the process-global registry clean, whatever happened.
class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override { DisableFailpoints(); }
  void TearDown() override { DisableFailpoints(); }
};

TEST_F(FailpointTest, DisabledByDefault) {
  EXPECT_FALSE(FailpointsEnabled());
  EXPECT_FALSE(FailpointTriggered("snapshot/open"));
  EXPECT_TRUE(FailpointReport().empty());
}

TEST_F(FailpointTest, EmptySpecDisables) {
  ASSERT_TRUE(ConfigureFailpoints("a/site=always").ok());
  EXPECT_TRUE(FailpointsEnabled());
  ASSERT_TRUE(ConfigureFailpoints("").ok());
  EXPECT_FALSE(FailpointsEnabled());
  EXPECT_FALSE(FailpointTriggered("a/site"));
}

TEST_F(FailpointTest, AlwaysFiresEveryEvaluation) {
  ASSERT_TRUE(ConfigureFailpoints("a/site=always").ok());
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(FailpointTriggered("a/site"));
  }
  EXPECT_FALSE(FailpointTriggered("other/site"));  // unconfigured stays off
}

TEST_F(FailpointTest, OffStaysDormantButCounted) {
  ASSERT_TRUE(ConfigureFailpoints("a/site=off").ok());
  EXPECT_TRUE(FailpointsEnabled());
  EXPECT_FALSE(FailpointTriggered("a/site"));
  EXPECT_FALSE(FailpointTriggered("a/site"));
  auto report = FailpointReport();
  ASSERT_EQ(report.size(), 1u);
  EXPECT_EQ(report[0].evaluations, 2u);
  EXPECT_EQ(report[0].fires, 0u);
}

TEST_F(FailpointTest, OnceFiresExactlyOnce) {
  ASSERT_TRUE(ConfigureFailpoints("a/site=once").ok());
  EXPECT_TRUE(FailpointTriggered("a/site"));
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(FailpointTriggered("a/site"));
  }
}

TEST_F(FailpointTest, TimesFiresExactlyN) {
  ASSERT_TRUE(ConfigureFailpoints("a/site=times:3").ok());
  int fires = 0;
  for (int i = 0; i < 10; ++i) {
    fires += FailpointTriggered("a/site");
  }
  EXPECT_EQ(fires, 3);
}

TEST_F(FailpointTest, ArgFilterRestrictsTrigger) {
  ASSERT_TRUE(ConfigureFailpoints("a/site=always@2").ok());
  EXPECT_FALSE(FailpointTriggered("a/site", 0));
  EXPECT_FALSE(FailpointTriggered("a/site", 1));
  EXPECT_TRUE(FailpointTriggered("a/site", 2));
  EXPECT_TRUE(FailpointTriggered("a/site", 2));
  EXPECT_FALSE(FailpointTriggered("a/site"));  // implicit arg = 0
}

TEST_F(FailpointTest, OnceWithArgFilterSurvivesNonMatchingEvaluations) {
  ASSERT_TRUE(ConfigureFailpoints("a/site=once@7").ok());
  for (int i = 0; i < 4; ++i) {
    EXPECT_FALSE(FailpointTriggered("a/site", i));  // 0..3 never match
  }
  EXPECT_TRUE(FailpointTriggered("a/site", 7));
  EXPECT_FALSE(FailpointTriggered("a/site", 7));  // disarmed
}

TEST_F(FailpointTest, ProbabilityEndpointsDegenerate) {
  ASSERT_TRUE(ConfigureFailpoints("a/site=p:0").ok());
  for (int i = 0; i < 64; ++i) {
    EXPECT_FALSE(FailpointTriggered("a/site"));
  }
  ASSERT_TRUE(ConfigureFailpoints("a/site=p:1").ok());
  for (int i = 0; i < 64; ++i) {
    EXPECT_TRUE(FailpointTriggered("a/site"));
  }
}

TEST_F(FailpointTest, ProbabilisticDrawsAreDeterministicInSeed) {
  auto draw_sequence = [](const std::string& spec) {
    EXPECT_TRUE(ConfigureFailpoints(spec).ok());
    std::vector<bool> fired;
    for (int i = 0; i < 256; ++i) {
      fired.push_back(FailpointTriggered("a/site"));
    }
    return fired;
  };
  const auto first = draw_sequence("seed=42,a/site=p:0.5");
  const auto second = draw_sequence("seed=42,a/site=p:0.5");
  EXPECT_EQ(first, second);  // same (seed, site): identical firing pattern

  // Sanity: the stream actually mixes (not constant) at p = 0.5.
  int fires = 0;
  for (bool f : first) fires += f;
  EXPECT_GT(fires, 0);
  EXPECT_LT(fires, 256);

  // A different seed yields a different per-site stream.
  const auto reseeded = draw_sequence("seed=43,a/site=p:0.5");
  EXPECT_NE(first, reseeded);
}

TEST_F(FailpointTest, BadSpecsRejectedAndLeavePreviousConfigUntouched) {
  ASSERT_TRUE(ConfigureFailpoints("a/site=always").ok());
  const char* bad[] = {
      "a/site",           // no '='
      "=always",          // empty site
      "a/site=maybe",     // unknown trigger
      "a/site=p:1.5",     // probability out of range
      "a/site=p:x",       // unparsable probability
      "a/site=times:-1",  // negative count
      "a/site=times:x",   // unparsable count
      "a/site=always@-2", // negative arg filter
      "seed=notanumber",  // unparsable seed
  };
  for (const char* spec : bad) {
    EXPECT_FALSE(ConfigureFailpoints(spec).ok()) << spec;
    // The previous (valid) configuration must still be in force.
    EXPECT_TRUE(FailpointTriggered("a/site")) << spec;
  }
}

TEST_F(FailpointTest, ReportCountsEvaluationsAndFires) {
  ASSERT_TRUE(ConfigureFailpoints("a/site=once,b/site=off").ok());
  FailpointTriggered("a/site");
  FailpointTriggered("a/site");
  FailpointTriggered("b/site");
  auto report = FailpointReport();
  ASSERT_EQ(report.size(), 2u);  // sorted by site name (std::map order)
  EXPECT_EQ(report[0].site, "a/site");
  EXPECT_EQ(report[0].trigger, "once");
  EXPECT_EQ(report[0].evaluations, 2u);
  EXPECT_EQ(report[0].fires, 1u);
  EXPECT_EQ(report[1].site, "b/site");
  EXPECT_EQ(report[1].evaluations, 1u);
  EXPECT_EQ(report[1].fires, 0u);

  const std::string json = FailpointReportJson();
  EXPECT_NE(json.find("\"site\":\"a/site\""), std::string::npos);
  EXPECT_NE(json.find("\"trigger\":\"once\""), std::string::npos);
  EXPECT_NE(json.find("\"fires\":1"), std::string::npos);
}

TEST_F(FailpointTest, ResetRearmsOnceAndTimesTriggers) {
  ASSERT_TRUE(ConfigureFailpoints("a/site=once").ok());
  EXPECT_TRUE(FailpointTriggered("a/site"));
  EXPECT_FALSE(FailpointTriggered("a/site"));
  ResetFailpointCounters();
  EXPECT_TRUE(FailpointTriggered("a/site"));  // re-armed
  auto report = FailpointReport();
  ASSERT_EQ(report.size(), 1u);
  EXPECT_EQ(report[0].evaluations, 1u);  // counters restarted from zero
  EXPECT_EQ(report[0].fires, 1u);
}

TEST_F(FailpointTest, FailpointErrorNamesTheSite) {
  const Status status = FailpointError("snapshot/open");
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("snapshot/open"), std::string::npos);
  EXPECT_NE(status.ToString().find("injected fault"), std::string::npos);
}

}  // namespace
}  // namespace deepaqp::util
