// TCP transport + connection supervision, end to end over loopback: the
// socket server must stream bit-identically to a direct vae::AqpClient,
// survive forced connection drops mid-stream via token resumption (same
// bytes, exactly once), reap silent connections without killing their
// sessions, shed overload with explicit SERVER_BUSY errors, answer
// heartbeats, and drain gracefully on shutdown.

#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "aqp/engine.h"
#include "aqp/sql_parser.h"
#include "data/generators.h"
#include "server/server.h"
#include "server/socket_client.h"
#include "server/socket_transport.h"
#include "util/failpoint.h"
#include "vae/client.h"
#include "vae/vae_model.h"

namespace deepaqp::server {
namespace {

struct EngineGuard {
  aqp::EngineKind saved = aqp::ActiveEngine();
  EngineGuard() { aqp::SetEngine(aqp::EngineKind::kVector); }
  ~EngineGuard() { aqp::SetEngine(saved); }
};

/// Arms a failpoint spec for one test body and guarantees a clean registry
/// afterwards (no spec leaks into the next test).
struct FailpointGuard {
  explicit FailpointGuard(const std::string& spec) {
    EXPECT_TRUE(util::ConfigureFailpoints(spec).ok());
  }
  ~FailpointGuard() { util::DisableFailpoints(); }
};

const std::vector<uint8_t>& ModelBytes() {
  static std::vector<uint8_t>* bytes = [] {
    auto table = data::GenerateTaxi({.rows = 4000, .seed = 21});
    vae::VaeAqpOptions opts;
    opts.epochs = 8;
    opts.hidden_dim = 48;
    opts.seed = 77;
    opts.encoder.numeric_bins = 16;
    auto model = vae::VaeAqpModel::Train(table, opts);
    EXPECT_TRUE(model.ok());
    return new std::vector<uint8_t>((*model)->Serialize());
  }();
  return *bytes;
}

vae::AqpClient::Options ClientOptions() {
  vae::AqpClient::Options copts;
  copts.initial_samples = 400;
  copts.max_samples = 6400;
  copts.population_rows = 4000;
  copts.seed = 2027;
  return copts;
}

AqpServer::Options ServerOptions() {
  AqpServer::Options opts;
  opts.client = ClientOptions();
  return opts;
}

struct QuerySpec {
  std::string sql;
  double max_relative_ci = 0.0;
};

std::vector<QuerySpec> DefaultQueries() {
  return {
      {"SELECT AVG(fare) FROM R WHERE trip_distance > 1", 0.03},
      {"SELECT COUNT(*) FROM R WHERE passengers >= 2", 0.05},
  };
}

/// The exact payload bytes a faithful stream must deliver for `queries`.
std::vector<std::vector<uint8_t>> ReferenceStream(
    const std::vector<QuerySpec>& queries) {
  auto client = vae::AqpClient::Open(ModelBytes(), ClientOptions());
  EXPECT_TRUE(client.ok());
  std::vector<std::vector<uint8_t>> out;
  for (const QuerySpec& spec : queries) {
    auto query = aqp::ParseSql(spec.sql, (*client)->pool());
    EXPECT_TRUE(query.ok()) << query.status().message();
    bool final = false;
    while (!final) {
      auto result =
          (*client)->QueryRefineStep(*query, spec.max_relative_ci, &final);
      EXPECT_TRUE(result.ok()) << result.status().message();
      Estimate estimate;
      estimate.pool_rows = (*client)->pool_size();
      estimate.result = std::move(*result);
      out.push_back(EncodeEstimate(estimate));
    }
  }
  return out;
}

/// One listening server over loopback, model pre-registered.
struct TcpServer {
  explicit TcpServer(const AqpServer::Options& opts = ServerOptions(),
                     SocketServer::Options sopts = {}) {
    srv = std::make_unique<AqpServer>(opts);
    auto model = vae::VaeAqpModel::Deserialize(ModelBytes());
    EXPECT_TRUE(model.ok());
    srv->registry().Install("taxi", std::move(*model));
    sopts.port = 0;  // ephemeral
    sock = std::make_unique<SocketServer>(srv.get(), sopts);
    EXPECT_TRUE(sock->Listen().ok());
    EXPECT_TRUE(sock->Start().ok());
  }
  // Destruction order matters: the socket loop must stop before the server.
  ~TcpServer() { sock->Shutdown(); }

  std::unique_ptr<AqpServer> srv;
  std::unique_ptr<SocketServer> sock;
};

RetryingConnection::Options ClientFor(const TcpServer& ts) {
  RetryingConnection::Options copts;
  copts.port = ts.sock->port();
  return copts;
}

std::vector<std::vector<uint8_t>> EncodeAll(
    const std::vector<Estimate>& estimates) {
  std::vector<std::vector<uint8_t>> out;
  out.reserve(estimates.size());
  for (const Estimate& e : estimates) out.push_back(EncodeEstimate(e));
  return out;
}

TEST(ServerSocketTest, FrameParserReassemblesSplitFrames) {
  // A frame split across arbitrary feed boundaries must reassemble exactly.
  std::vector<uint8_t> body = {1, 2, 3, 4, 5, 6, 7};
  std::vector<uint8_t> framed;
  ASSERT_TRUE(AppendFramed(body, &framed).ok());
  ASSERT_TRUE(AppendFramed(body, &framed).ok());  // two frames back to back
  for (size_t chunk = 1; chunk <= framed.size(); ++chunk) {
    FrameParser parser;
    std::vector<std::vector<uint8_t>> got;
    for (size_t off = 0; off < framed.size(); off += chunk) {
      const size_t n = std::min(chunk, framed.size() - off);
      ASSERT_TRUE(parser.Feed(framed.data() + off, n).ok());
      std::vector<uint8_t> frame;
      while (parser.Next(&frame)) got.push_back(frame);
    }
    ASSERT_EQ(got.size(), 2u) << "chunk=" << chunk;
    EXPECT_EQ(got[0], body);
    EXPECT_EQ(got[1], body);
  }
}

TEST(ServerSocketTest, FrameParserRejectsOversizedPrefix) {
  FrameParser parser;
  uint8_t evil[4] = {0xff, 0xff, 0xff, 0xff};  // ~4GB frame claim
  EXPECT_FALSE(parser.Feed(evil, 4).ok());
  // Poisoned: nothing is ever parseable again.
  uint8_t more[8] = {0};
  EXPECT_FALSE(parser.Feed(more, 8).ok());
  std::vector<uint8_t> frame;
  EXPECT_FALSE(parser.Next(&frame));
}

TEST(ServerSocketTest, LoopbackStreamMatchesDirectClientBitForBit) {
  EngineGuard guard;
  const std::vector<QuerySpec> queries = DefaultQueries();
  const auto reference = ReferenceStream(queries);
  ASSERT_GT(reference.size(), queries.size());

  TcpServer ts;
  RetryingConnection client(ClientFor(ts));
  ASSERT_TRUE(client.Connect().ok());
  ASSERT_TRUE(client.OpenSession("taxi").ok());
  std::vector<std::vector<uint8_t>> got;
  for (const QuerySpec& spec : queries) {
    auto stream = client.RunQuery(spec.sql, spec.max_relative_ci);
    ASSERT_TRUE(stream.ok()) << stream.status().message();
    EXPECT_EQ(stream->resumes, 0u);
    for (auto& bytes : EncodeAll(stream->estimates)) {
      got.push_back(std::move(bytes));
    }
  }
  EXPECT_EQ(got, reference);
  EXPECT_TRUE(client.CloseSession().ok());
}

TEST(ServerSocketTest, PingPongRoundTrip) {
  EngineGuard guard;
  TcpServer ts;
  RetryingConnection client(ClientFor(ts));
  ASSERT_TRUE(client.Connect().ok());
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(client.Ping().ok());
}

// The acceptance-criteria test: the connection is forcibly dropped
// mid-stream (injected write fault kills the socket server-side), the
// client reconnects with its resumption token, and the final answer is
// bit-identical to an uninterrupted run.
TEST(ServerSocketTest, DroppedConnectionResumesBitIdentical) {
  EngineGuard guard;
  const std::vector<QuerySpec> queries = DefaultQueries();
  const auto reference = ReferenceStream(queries);

  TcpServer ts;
  RetryingConnection client(ClientFor(ts));
  ASSERT_TRUE(client.Connect().ok());
  ASSERT_TRUE(client.OpenSession("taxi").ok());
  ASSERT_NE(client.resume_token(), 0u);

  std::vector<std::vector<uint8_t>> got;
  uint64_t total_resumes = 0;
  {
    // Arm after the session handshake: the next server-side write attempt
    // (this stream's first delivery) kills the connection.
    FailpointGuard fp("socket/write=once");
    for (const QuerySpec& spec : queries) {
      auto stream = client.RunQuery(spec.sql, spec.max_relative_ci);
      ASSERT_TRUE(stream.ok()) << stream.status().message();
      total_resumes += stream->resumes;
      for (auto& bytes : EncodeAll(stream->estimates)) {
        got.push_back(std::move(bytes));
      }
    }
  }
  EXPECT_GE(total_resumes, 1u);
  EXPECT_GE(client.reconnects(), 1u);
  EXPECT_EQ(got, reference);  // exactly-once, in order, same bytes
  EXPECT_TRUE(client.CloseSession().ok());
}

// Same acceptance shape, cut by the supervision layer instead of the write
// path: the heartbeat reaper declares the connection dead mid-stream.
TEST(ServerSocketTest, HeartbeatReapMidStreamResumesBitIdentical) {
  EngineGuard guard;
  const std::vector<QuerySpec> queries = DefaultQueries();
  const auto reference = ReferenceStream(queries);

  SocketServer::Options sopts;
  sopts.heartbeat_ms = 50;  // fast ticks so the injected miss fires quickly
  sopts.heartbeat_misses = 1000;  // ...but only the fault reaps, not time
  TcpServer ts(ServerOptions(), sopts);
  RetryingConnection client(ClientFor(ts));
  ASSERT_TRUE(client.Connect().ok());
  ASSERT_TRUE(client.OpenSession("taxi").ok());

  std::vector<std::vector<uint8_t>> got;
  uint64_t total_resumes = 0;
  {
    FailpointGuard fp("server/heartbeat_miss=once");
    for (const QuerySpec& spec : queries) {
      auto stream = client.RunQuery(spec.sql, spec.max_relative_ci);
      ASSERT_TRUE(stream.ok()) << stream.status().message();
      total_resumes += stream->resumes;
      for (auto& bytes : EncodeAll(stream->estimates)) {
        got.push_back(std::move(bytes));
      }
    }
  }
  EXPECT_GE(ts.sock->reaped_connections(), 1u);
  EXPECT_GE(total_resumes + client.reconnects(), 1u);
  EXPECT_EQ(got, reference);
  EXPECT_TRUE(client.CloseSession().ok());
}

TEST(ServerSocketTest, SilentConnectionReapedButSessionSurvives) {
  EngineGuard guard;
  SocketServer::Options sopts;
  sopts.heartbeat_ms = 20;
  sopts.heartbeat_misses = 2;
  TcpServer ts(ServerOptions(), sopts);

  // Raw connection (no retry layer): open a session, then go silent.
  SocketConnection raw;
  ASSERT_TRUE(raw.Connect("127.0.0.1", ts.sock->port(), 2000).ok());
  ClientMessage open;
  open.kind = ClientMessageKind::kOpenSession;
  open.model_name = "taxi";
  ASSERT_TRUE(raw.Send(open).ok());
  auto opened = raw.Receive(5000);
  ASSERT_TRUE(opened.ok());
  ASSERT_TRUE(opened->has_value());
  ASSERT_EQ((*opened)->kind, ServerMessageKind::kSessionOpened);
  const uint64_t session = (*opened)->session;
  const uint64_t token = (*opened)->resume_token;
  ASSERT_NE(token, 0u);

  // Silence past the liveness deadline: the CONNECTION must be reaped...
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (ts.sock->num_connections() > 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(ts.sock->num_connections(), 0u);
  EXPECT_GE(ts.sock->reaped_connections(), 1u);
  // ...but the SESSION must not: it is resumable on a fresh connection.
  EXPECT_EQ(ts.srv->num_sessions(), 1u);

  SocketConnection fresh;
  ASSERT_TRUE(fresh.Connect("127.0.0.1", ts.sock->port(), 2000).ok());
  ClientMessage resume;
  resume.kind = ClientMessageKind::kResumeSession;
  resume.session = session;
  resume.resume_token = token;
  ASSERT_TRUE(fresh.Send(resume).ok());
  auto resumed = fresh.Receive(5000);
  ASSERT_TRUE(resumed.ok());
  ASSERT_TRUE(resumed->has_value());
  EXPECT_EQ((*resumed)->kind, ServerMessageKind::kSessionResumed);
}

TEST(ServerSocketTest, ResumeWithBadTokenRejected) {
  EngineGuard guard;
  TcpServer ts;
  SocketConnection raw;
  ASSERT_TRUE(raw.Connect("127.0.0.1", ts.sock->port(), 2000).ok());
  ClientMessage open;
  open.kind = ClientMessageKind::kOpenSession;
  open.model_name = "taxi";
  ASSERT_TRUE(raw.Send(open).ok());
  auto opened = raw.Receive(5000);
  ASSERT_TRUE(opened.ok() && opened->has_value());
  const uint64_t session = (*opened)->session;
  const uint64_t token = (*opened)->resume_token;

  SocketConnection thief;
  ASSERT_TRUE(thief.Connect("127.0.0.1", ts.sock->port(), 2000).ok());
  ClientMessage resume;
  resume.kind = ClientMessageKind::kResumeSession;
  resume.session = session;
  resume.resume_token = token ^ 0xdeadbeefULL;  // wrong secret
  ASSERT_TRUE(thief.Send(resume).ok());
  auto reply = thief.Receive(5000);
  ASSERT_TRUE(reply.ok() && reply->has_value());
  EXPECT_EQ((*reply)->kind, ServerMessageKind::kError);
  EXPECT_NE((*reply)->message.find("resume rejected"), std::string::npos);
}

TEST(ServerSocketTest, AdmissionControlShedsWithServerBusy) {
  EngineGuard guard;
  AqpServer::Options opts = ServerOptions();
  opts.max_sessions = 1;
  TcpServer ts(opts);

  RetryingConnection first(ClientFor(ts));
  ASSERT_TRUE(first.Connect().ok());
  ASSERT_TRUE(first.OpenSession("taxi").ok());

  RetryingConnection second(ClientFor(ts));
  ASSERT_TRUE(second.Connect().ok());
  util::Status refused = second.OpenSession("taxi");
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.code(), util::StatusCode::kUnavailable);
  EXPECT_NE(refused.message().find("SERVER_BUSY"), std::string::npos);

  // The admitted session is untouched by the shed one: it still streams.
  auto stream = first.RunQuery(DefaultQueries()[0].sql, 0.05);
  EXPECT_TRUE(stream.ok()) << stream.status().message();

  // Closing the first session frees the slot.
  ASSERT_TRUE(first.CloseSession().ok());
  EXPECT_TRUE(second.OpenSession("taxi").ok());
}

TEST(ServerSocketTest, GracefulShutdownFinishesInFlightStream) {
  EngineGuard guard;
  const std::vector<QuerySpec> queries = DefaultQueries();
  const auto reference = ReferenceStream({queries[0]});

  auto ts = std::make_unique<TcpServer>();
  RetryingConnection client(ClientFor(*ts));
  ASSERT_TRUE(client.Connect().ok());
  ASSERT_TRUE(client.OpenSession("taxi").ok());

  util::Result<RetryingConnection::StreamResult> stream =
      util::Status::Internal("not run");
  std::thread driver([&] {
    stream = client.RunQuery(queries[0].sql, queries[0].max_relative_ci);
  });
  // Let the stream get going, then shut down while it is in flight. The
  // drain must let it finish (the client keeps acking), not truncate it.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const bool clean = ts->sock->Shutdown();
  driver.join();

  if (stream.ok()) {
    EXPECT_EQ(EncodeAll(stream->estimates), reference);
    EXPECT_TRUE(clean);
  } else {
    // The only acceptable failure is an explicit shutdown rejection —
    // never a silently truncated stream.
    EXPECT_NE(stream.status().message().find("SHUTTING_DOWN"),
              std::string::npos)
        << stream.status().message();
  }
  // New work after shutdown is refused outright (connection or open fails).
  RetryingConnection::Options copts = ClientFor(*ts);
  copts.max_attempts = 1;
  RetryingConnection late(copts);
  util::Status st = late.Connect();
  if (st.ok()) st = late.OpenSession("taxi");
  EXPECT_FALSE(st.ok());
}

TEST(ServerSocketTest, ShutdownRefusesNewSessionsDuringDrain) {
  EngineGuard guard;
  TcpServer ts;
  RetryingConnection client(ClientFor(ts));
  ASSERT_TRUE(client.Connect().ok());
  ASSERT_TRUE(client.OpenSession("taxi").ok());

  ts.srv->BeginShutdown();
  RetryingConnection late(ClientFor(ts));
  ASSERT_TRUE(late.Connect().ok());  // socket still accepts during phase 1
  util::Status refused = late.OpenSession("taxi");
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.code(), util::StatusCode::kUnavailable);
  EXPECT_NE(refused.message().find("SHUTTING_DOWN"), std::string::npos);
}

}  // namespace
}  // namespace deepaqp::server
