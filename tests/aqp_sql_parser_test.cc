#include "aqp/sql_parser.h"

#include <gtest/gtest.h>

#include "aqp/executor.h"
#include "data/generators.h"

namespace deepaqp::aqp {
namespace {

class SqlParserTest : public ::testing::Test {
 protected:
  SqlParserTest() : table_(data::GenerateTaxi({.rows = 500, .seed = 1})) {}
  relation::Table table_;
};

TEST_F(SqlParserTest, CountStar) {
  auto q = ParseSql("SELECT COUNT(*) FROM R", table_);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->agg, AggFunc::kCount);
  EXPECT_TRUE(q->filter.conditions.empty());
  EXPECT_FALSE(q->IsGroupBy());
}

TEST_F(SqlParserTest, AvgWithNumericFilter) {
  auto q = ParseSql("SELECT AVG(fare) FROM R WHERE trip_distance > 2.5",
                    table_);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->agg, AggFunc::kAvg);
  EXPECT_EQ(q->measure_attr, table_.schema().IndexOf("fare"));
  ASSERT_EQ(q->filter.conditions.size(), 1u);
  EXPECT_EQ(q->filter.conditions[0].op, CmpOp::kGt);
  EXPECT_DOUBLE_EQ(q->filter.conditions[0].value, 2.5);
}

TEST_F(SqlParserTest, QuotedLabelResolvesThroughDictionary) {
  auto q = ParseSql(
      "SELECT COUNT(*) FROM R WHERE pickup_borough = 'Brooklyn'", table_);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->filter.conditions.size(), 1u);
  EXPECT_DOUBLE_EQ(q->filter.conditions[0].value,
                   table_.dict(0).Lookup("Brooklyn"));
}

TEST_F(SqlParserTest, GroupByAndConjunction) {
  auto q = ParseSql(
      "SELECT SUM(fare) FROM R WHERE trip_distance >= 1 AND passengers <= 4 "
      "GROUP BY payment_type",
      table_);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->agg, AggFunc::kSum);
  EXPECT_TRUE(q->filter.conjunctive);
  EXPECT_EQ(q->filter.conditions.size(), 2u);
  EXPECT_EQ(q->group_by_attr, table_.schema().IndexOf("payment_type"));
}

TEST_F(SqlParserTest, Disjunction) {
  auto q = ParseSql(
      "SELECT COUNT(*) FROM R WHERE fare < 5 OR fare > 100", table_);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_FALSE(q->filter.conjunctive);
}

TEST_F(SqlParserTest, QuantileAggregate) {
  auto q = ParseSql("SELECT QUANTILE(0.9, duration_min) FROM R", table_);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->agg, AggFunc::kQuantile);
  EXPECT_DOUBLE_EQ(q->quantile, 0.9);
  EXPECT_EQ(q->measure_attr, table_.schema().IndexOf("duration_min"));
}

TEST_F(SqlParserTest, KeywordsAreCaseInsensitive) {
  auto q = ParseSql("select avg(fare) from R where hour != 3 group by hour",
                    table_);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->agg, AggFunc::kAvg);
  EXPECT_EQ(q->filter.conditions[0].op, CmpOp::kNe);
}

TEST_F(SqlParserTest, NotEqualsSpellings) {
  auto a = ParseSql("SELECT COUNT(*) FROM R WHERE passengers != 1", table_);
  auto b = ParseSql("SELECT COUNT(*) FROM R WHERE passengers <> 1", table_);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->filter.conditions[0].op, CmpOp::kNe);
  EXPECT_EQ(b->filter.conditions[0].op, CmpOp::kNe);
}

TEST_F(SqlParserTest, ParsedQueryExecutesLikeHandBuilt) {
  auto q = ParseSql(
      "SELECT AVG(fare) FROM R WHERE pickup_borough = 'Manhattan'", table_);
  ASSERT_TRUE(q.ok());
  AggregateQuery manual;
  manual.agg = AggFunc::kAvg;
  manual.measure_attr = table_.schema().IndexOf("fare");
  manual.filter.conditions.push_back({0, CmpOp::kEq, 0.0});
  EXPECT_DOUBLE_EQ(ExecuteExact(*q, table_)->Scalar(),
                   ExecuteExact(manual, table_)->Scalar());
}

TEST_F(SqlParserTest, ErrorsAreDescriptive) {
  EXPECT_FALSE(ParseSql("", table_).ok());
  EXPECT_FALSE(ParseSql("SELECT", table_).ok());
  EXPECT_FALSE(ParseSql("SELECT MAX(fare) FROM R", table_).ok());
  EXPECT_FALSE(ParseSql("SELECT AVG(nope) FROM R", table_).ok());
  EXPECT_FALSE(ParseSql("SELECT COUNT(*) FROM R WHERE", table_).ok());
  EXPECT_FALSE(
      ParseSql("SELECT COUNT(*) FROM R WHERE fare >", table_).ok());
  EXPECT_FALSE(ParseSql("SELECT COUNT(*) FROM R WHERE fare > 1 AND "
                        "fare < 2 OR fare > 5",
                        table_)
                   .ok());
  EXPECT_FALSE(
      ParseSql("SELECT COUNT(*) FROM R WHERE fare = 'label'", table_).ok());
  EXPECT_FALSE(ParseSql("SELECT COUNT(*) FROM R WHERE pickup_borough = "
                        "'Atlantis'",
                        table_)
                   .ok());
  EXPECT_FALSE(ParseSql("SELECT COUNT(*) FROM R GROUP BY fare", table_).ok());
  EXPECT_FALSE(ParseSql("SELECT COUNT(*) FROM R extra", table_).ok());
  EXPECT_FALSE(
      ParseSql("SELECT COUNT(*) FROM R WHERE fare > 'x", table_).ok());
}

TEST_F(SqlParserTest, GroupByNumericRejected) {
  auto q = ParseSql("SELECT COUNT(*) FROM R GROUP BY fare", table_);
  EXPECT_FALSE(q.ok());
  EXPECT_EQ(q.status().code(), util::StatusCode::kInvalidArgument);
}

TEST_F(SqlParserTest, RoundTripThroughToString) {
  // ToString output of a parsed query parses back to the same semantics
  // (codes are printed numerically, which the parser accepts).
  auto q = ParseSql(
      "SELECT SUM(fare) FROM R WHERE trip_distance <= 3.000 GROUP BY hour",
      table_);
  ASSERT_TRUE(q.ok());
  auto q2 = ParseSql(q->ToString(table_.schema()), table_);
  ASSERT_TRUE(q2.ok()) << q2.status().ToString();
  EXPECT_DOUBLE_EQ(ExecuteExact(*q, table_)->groups[0].value,
                   ExecuteExact(*q2, table_)->groups[0].value);
}

}  // namespace
}  // namespace deepaqp::aqp
