#include "nn/optimizer.h"

#include <cmath>

#include <gtest/gtest.h>

#include "nn/loss.h"

namespace deepaqp::nn {
namespace {

/// Minimizes f(w) = 0.5 * ||w - target||^2 with the given optimizer factory;
/// returns the final squared distance to the target.
template <typename MakeOpt>
double DriveQuadratic(MakeOpt make_opt, int steps) {
  Parameter w;
  w.value = Matrix(1, 4);
  w.value.At(0, 0) = 5.0f;
  w.value.At(0, 1) = -3.0f;
  w.value.At(0, 2) = 0.5f;
  w.value.At(0, 3) = 2.0f;
  w.ZeroGrad();
  Matrix target(1, 4);
  target.At(0, 0) = 1.0f;
  target.At(0, 1) = 1.0f;
  target.At(0, 2) = 1.0f;
  target.At(0, 3) = 1.0f;

  auto opt = make_opt(std::vector<Parameter*>{&w});
  for (int i = 0; i < steps; ++i) {
    opt->ZeroGrad();
    for (size_t j = 0; j < 4; ++j) {
      w.grad.At(0, j) = w.value.At(0, j) - target.At(0, j);
    }
    opt->Step();
  }
  double dist = 0.0;
  for (size_t j = 0; j < 4; ++j) {
    const double d = w.value.At(0, j) - target.At(0, j);
    dist += d * d;
  }
  return dist;
}

TEST(OptimizerTest, SgdConvergesOnQuadratic) {
  const double dist = DriveQuadratic(
      [](std::vector<Parameter*> p) {
        return std::make_unique<Sgd>(std::move(p), 0.1f);
      },
      200);
  EXPECT_LT(dist, 1e-6);
}

TEST(OptimizerTest, SgdMomentumConverges) {
  const double dist = DriveQuadratic(
      [](std::vector<Parameter*> p) {
        return std::make_unique<Sgd>(std::move(p), 0.05f, 0.9f);
      },
      300);
  EXPECT_LT(dist, 1e-6);
}

TEST(OptimizerTest, AdamConvergesOnQuadratic) {
  const double dist = DriveQuadratic(
      [](std::vector<Parameter*> p) {
        return std::make_unique<Adam>(std::move(p), 0.1f);
      },
      500);
  EXPECT_LT(dist, 1e-5);
}

TEST(OptimizerTest, RmsPropConvergesOnQuadratic) {
  const double dist = DriveQuadratic(
      [](std::vector<Parameter*> p) {
        return std::make_unique<RmsProp>(std::move(p), 0.05f);
      },
      800);
  EXPECT_LT(dist, 1e-4);
}

TEST(OptimizerTest, ZeroGradClearsAccumulation) {
  Parameter w;
  w.value = Matrix(1, 1);
  w.ZeroGrad();
  w.grad.At(0, 0) = 5.0f;
  Sgd opt({&w}, 1.0f);
  opt.ZeroGrad();
  EXPECT_EQ(w.grad.At(0, 0), 0.0f);
}

TEST(OptimizerTest, ClipParametersBoundsValues) {
  Parameter w;
  w.value = Matrix(1, 3);
  w.value.At(0, 0) = 2.0f;
  w.value.At(0, 1) = -0.5f;
  w.value.At(0, 2) = -9.0f;
  w.ZeroGrad();
  ClipParameters({&w}, 1.0f);
  EXPECT_EQ(w.value.At(0, 0), 1.0f);
  EXPECT_EQ(w.value.At(0, 1), -0.5f);
  EXPECT_EQ(w.value.At(0, 2), -1.0f);
}

TEST(OptimizerTest, ClipGradientNormRescales) {
  Parameter w;
  w.value = Matrix(1, 2);
  w.ZeroGrad();
  w.grad.At(0, 0) = 3.0f;
  w.grad.At(0, 1) = 4.0f;  // norm 5
  ClipGradientNorm({&w}, 1.0f);
  const double norm = std::sqrt(SumSquares(w.grad));
  EXPECT_NEAR(norm, 1.0, 1e-5);
  EXPECT_NEAR(w.grad.At(0, 0) / w.grad.At(0, 1), 0.75, 1e-5);
}

TEST(OptimizerTest, ClipGradientNormLeavesSmallGradients) {
  Parameter w;
  w.value = Matrix(1, 2);
  w.ZeroGrad();
  w.grad.At(0, 0) = 0.1f;
  ClipGradientNorm({&w}, 1.0f);
  EXPECT_FLOAT_EQ(w.grad.At(0, 0), 0.1f);
}

TEST(LossTest, BceMatchesManualComputation) {
  Matrix logits(1, 2);
  logits.At(0, 0) = 0.0f;
  logits.At(0, 1) = 2.0f;
  Matrix targets(1, 2);
  targets.At(0, 0) = 1.0f;
  targets.At(0, 1) = 0.0f;
  auto loss = BceWithLogits(logits, targets);
  // -log(0.5) + -log(1 - sigmoid(2))
  const double expected = -std::log(0.5) - std::log(1.0 - 1.0 / (1.0 + std::exp(-2.0)));
  EXPECT_NEAR(loss.value, expected, 1e-6);
  EXPECT_NEAR(loss.grad.At(0, 0), 0.5 - 1.0, 1e-6);
}

TEST(LossTest, BceGradientNumericCheck) {
  util::Rng rng(3);
  Matrix logits(3, 4);
  logits.RandomizeGaussian(rng, 1.0f);
  Matrix targets(3, 4);
  for (size_t i = 0; i < targets.size(); ++i) {
    targets.data()[i] = rng.Bernoulli(0.5) ? 1.0f : 0.0f;
  }
  auto loss = BceWithLogits(logits, targets);
  const float eps = 1e-3f;
  for (size_t i = 0; i < logits.size(); ++i) {
    Matrix up = logits, down = logits;
    up.data()[i] += eps;
    down.data()[i] -= eps;
    const double numeric = (BceWithLogits(up, targets).value -
                            BceWithLogits(down, targets).value) /
                           (2.0 * eps);
    EXPECT_NEAR(loss.grad.data()[i], numeric, 1e-3);
  }
}

TEST(LossTest, MseGradientNumericCheck) {
  util::Rng rng(5);
  Matrix out(2, 3), targets(2, 3);
  out.RandomizeGaussian(rng, 1.0f);
  targets.RandomizeGaussian(rng, 1.0f);
  auto loss = MeanSquaredError(out, targets);
  const float eps = 1e-3f;
  for (size_t i = 0; i < out.size(); ++i) {
    Matrix up = out, down = out;
    up.data()[i] += eps;
    down.data()[i] -= eps;
    const double numeric = (MeanSquaredError(up, targets).value -
                            MeanSquaredError(down, targets).value) /
                           (2.0 * eps);
    EXPECT_NEAR(loss.grad.data()[i], numeric, 1e-3);
  }
}

TEST(LossTest, GaussianKlZeroAtStandardNormal) {
  Matrix mu(2, 3), logvar(2, 3);
  Matrix grad_logvar;
  auto kl = GaussianKl(mu, logvar, &grad_logvar);
  EXPECT_NEAR(kl.value, 0.0, 1e-9);
  for (size_t i = 0; i < grad_logvar.size(); ++i) {
    EXPECT_NEAR(kl.grad.data()[i], 0.0, 1e-9);
    EXPECT_NEAR(grad_logvar.data()[i], 0.0, 1e-9);
  }
}

TEST(LossTest, GaussianKlGradientNumericCheck) {
  util::Rng rng(7);
  Matrix mu(2, 3), logvar(2, 3);
  mu.RandomizeGaussian(rng, 1.0f);
  logvar.RandomizeGaussian(rng, 0.5f);
  Matrix grad_logvar;
  auto kl = GaussianKl(mu, logvar, &grad_logvar);
  const float eps = 1e-3f;
  Matrix dummy;
  for (size_t i = 0; i < mu.size(); ++i) {
    Matrix up = mu, down = mu;
    up.data()[i] += eps;
    down.data()[i] -= eps;
    const double numeric = (GaussianKl(up, logvar, &dummy).value -
                            GaussianKl(down, logvar, &dummy).value) /
                           (2.0 * eps);
    EXPECT_NEAR(kl.grad.data()[i], numeric, 1e-3);
  }
  for (size_t i = 0; i < logvar.size(); ++i) {
    Matrix up = logvar, down = logvar;
    up.data()[i] += eps;
    down.data()[i] -= eps;
    const double numeric = (GaussianKl(mu, up, &dummy).value -
                            GaussianKl(mu, down, &dummy).value) /
                           (2.0 * eps);
    EXPECT_NEAR(grad_logvar.data()[i], numeric, 1e-3);
  }
}

TEST(LossTest, BernoulliRowLikelihoodConsistentWithBce) {
  util::Rng rng(9);
  Matrix logits(4, 5), targets(4, 5);
  logits.RandomizeGaussian(rng, 1.0f);
  for (size_t i = 0; i < targets.size(); ++i) {
    targets.data()[i] = rng.Bernoulli(0.5) ? 1.0f : 0.0f;
  }
  Matrix rows = BernoulliLogLikelihoodRows(logits, targets);
  double total = 0.0;
  for (size_t r = 0; r < rows.rows(); ++r) total += rows.At(r, 0);
  // Sum of row log-likelihoods == -batch * mean BCE.
  const double bce = BceWithLogits(logits, targets).value;
  EXPECT_NEAR(-total / 4.0, bce, 1e-4);
}

TEST(LossTest, GaussianRowDensities) {
  Matrix x(1, 2), mu(1, 2), logvar(1, 2);
  x.At(0, 0) = 1.0f;
  x.At(0, 1) = -1.0f;
  Matrix rows = GaussianLogDensityRows(x, mu, logvar);
  Matrix std_rows = StandardNormalLogDensityRows(x);
  // With mu=0, logvar=0 the two must agree.
  EXPECT_NEAR(rows.At(0, 0), std_rows.At(0, 0), 1e-5);
  const double expected = -0.5 * (2 * std::log(2 * M_PI) + 2.0);
  EXPECT_NEAR(rows.At(0, 0), expected, 1e-4);
}

}  // namespace
}  // namespace deepaqp::nn
