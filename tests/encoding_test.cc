#include "encoding/tuple_encoder.h"

#include <cmath>

#include <gtest/gtest.h>

#include "data/generators.h"

namespace deepaqp::encoding {
namespace {

using relation::AttrType;
using relation::Datum;
using relation::Schema;
using relation::Table;

Table SmallTable() {
  Schema s;
  EXPECT_TRUE(s.AddAttribute("color", AttrType::kCategorical).ok());
  EXPECT_TRUE(s.AddAttribute("value", AttrType::kNumeric).ok());
  Table t(s);
  t.DeclareCardinality(0, 3);
  for (int i = 0; i < 90; ++i) {
    t.AppendRow({Datum::Categorical(i % 3), Datum::Numeric(i)});
  }
  return t;
}

TEST(EncoderTest, OneHotWidths) {
  Table t = SmallTable();
  EncoderOptions opts;
  opts.kind = EncodingKind::kOneHot;
  opts.numeric_bins = 4;
  auto enc = TupleEncoder::Fit(t, opts);
  ASSERT_TRUE(enc.ok());
  // color: 3 slots; value: 4 bins one-hot = 4 slots.
  EXPECT_EQ(enc->encoded_dim(), 7u);
  EXPECT_EQ(enc->layout()[0].width, 3u);
  EXPECT_EQ(enc->layout()[1].width, 4u);
}

TEST(EncoderTest, BinaryWidthsAreLogarithmic) {
  Table t = SmallTable();
  EncoderOptions opts;
  opts.kind = EncodingKind::kBinary;
  opts.numeric_bins = 8;
  auto enc = TupleEncoder::Fit(t, opts);
  ASSERT_TRUE(enc.ok());
  // color card 3 -> 2 bits; 8 bins -> 3 bits.
  EXPECT_EQ(enc->layout()[0].width, 2u);
  EXPECT_EQ(enc->layout()[1].width, 3u);
  EXPECT_EQ(enc->encoded_dim(), 5u);
}

TEST(EncoderTest, IntegerWidthIsOne) {
  Table t = SmallTable();
  EncoderOptions opts;
  opts.kind = EncodingKind::kInteger;
  auto enc = TupleEncoder::Fit(t, opts);
  ASSERT_TRUE(enc.ok());
  EXPECT_EQ(enc->encoded_dim(), 2u);
}

TEST(EncoderTest, OneHotEncodeSetsExactlyOneSlotPerAttribute) {
  Table t = SmallTable();
  EncoderOptions opts;
  opts.kind = EncodingKind::kOneHot;
  opts.numeric_bins = 4;
  auto enc = TupleEncoder::Fit(t, opts);
  ASSERT_TRUE(enc.ok());
  auto m = enc->EncodeAll(t);
  for (size_t r = 0; r < m.rows(); ++r) {
    float cat_sum = 0, num_sum = 0;
    for (size_t c = 0; c < 3; ++c) cat_sum += m.At(r, c);
    for (size_t c = 3; c < 7; ++c) num_sum += m.At(r, c);
    EXPECT_EQ(cat_sum, 1.0f);
    EXPECT_EQ(num_sum, 1.0f);
  }
  // Row 5: color = 2 -> slot 2 set.
  EXPECT_EQ(m.At(5, 2), 1.0f);
}

TEST(EncoderTest, BinaryEncodeMatchesBitPattern) {
  Table t = SmallTable();
  EncoderOptions opts;
  opts.kind = EncodingKind::kBinary;
  opts.numeric_bins = 4;
  auto enc = TupleEncoder::Fit(t, opts);
  ASSERT_TRUE(enc.ok());
  auto m = enc->EncodeAll(t);
  // Row 5: color = 2 -> bits LSB-first: 0, 1.
  EXPECT_EQ(m.At(5, 0), 0.0f);
  EXPECT_EQ(m.At(5, 1), 1.0f);
}

TEST(EncoderTest, DecodeBitsRoundTripsCleanEncodings) {
  Table t = SmallTable();
  for (EncodingKind kind :
       {EncodingKind::kOneHot, EncodingKind::kBinary,
        EncodingKind::kInteger}) {
    EncoderOptions opts;
    opts.kind = kind;
    opts.numeric_bins = 8;
    auto enc = TupleEncoder::Fit(t, opts);
    ASSERT_TRUE(enc.ok());
    auto m = enc->EncodeAll(t);
    for (size_t r = 0; r < 30; ++r) {
      auto codes = enc->DecodeBitsToCodes(m.Row(r));
      EXPECT_EQ(codes[0], t.CatCode(r, 0))
          << EncodingKindName(kind) << " row " << r;
    }
  }
}

TEST(EncoderTest, EquiDepthBinsBalanceCounts) {
  Table t = SmallTable();
  EncoderOptions opts;
  opts.kind = EncodingKind::kOneHot;
  opts.numeric_bins = 3;
  auto enc = TupleEncoder::Fit(t, opts);
  ASSERT_TRUE(enc.ok());
  auto m = enc->EncodeAll(t);
  // Values 0..89 split into 3 equi-depth bins -> 30 rows per bin.
  std::vector<int> counts(3, 0);
  for (size_t r = 0; r < m.rows(); ++r) {
    for (int b = 0; b < 3; ++b) {
      if (m.At(r, 3 + b) == 1.0f) ++counts[b];
    }
  }
  for (int b = 0; b < 3; ++b) EXPECT_NEAR(counts[b], 30, 2);
}

TEST(EncoderTest, ConstantNumericColumnSurvives) {
  Schema s;
  ASSERT_TRUE(s.AddAttribute("k", AttrType::kNumeric).ok());
  Table t(s);
  for (int i = 0; i < 10; ++i) t.AppendRow({Datum::Numeric(7.0)});
  auto enc = TupleEncoder::Fit(t, {});
  ASSERT_TRUE(enc.ok());
  auto m = enc->EncodeAll(t);
  util::Rng rng(1);
  auto decoded =
      enc->DecodeLogits(nn::Matrix(1, enc->encoded_dim(), 10.0f),
                        {DecodeStrategy::kMaxVote, 4}, rng);
  EXPECT_EQ(decoded.NumValue(0, 0), 7.0);
}

TEST(EncoderTest, RejectsEmptyTableAndBadBins) {
  Schema s;
  ASSERT_TRUE(s.AddAttribute("x", AttrType::kNumeric).ok());
  Table empty(s);
  EXPECT_FALSE(TupleEncoder::Fit(empty, {}).ok());
  Table t = SmallTable();
  EncoderOptions bad;
  bad.numeric_bins = 1;
  EXPECT_FALSE(TupleEncoder::Fit(t, bad).ok());
}

TEST(EncoderTest, DecodeLogitsWithConfidentLogitsRecoversTuple) {
  Table t = SmallTable();
  for (EncodingKind kind :
       {EncodingKind::kOneHot, EncodingKind::kBinary}) {
    EncoderOptions opts;
    opts.kind = kind;
    opts.numeric_bins = 4;
    auto enc = TupleEncoder::Fit(t, opts);
    ASSERT_TRUE(enc.ok());
    auto bits = enc->EncodeAll(t);
    // Map bits {0,1} to large-magnitude logits {-12, +12}.
    nn::Matrix logits(10, enc->encoded_dim());
    for (size_t r = 0; r < 10; ++r) {
      for (size_t c = 0; c < enc->encoded_dim(); ++c) {
        logits.At(r, c) = bits.At(r, c) > 0.5f ? 12.0f : -12.0f;
      }
    }
    util::Rng rng(3);
    auto decoded =
        enc->DecodeLogits(logits, {DecodeStrategy::kMaxVote, 8}, rng);
    ASSERT_EQ(decoded.num_rows(), 10u);
    for (size_t r = 0; r < 10; ++r) {
      EXPECT_EQ(decoded.CatCode(r, 0), t.CatCode(r, 0))
          << EncodingKindName(kind);
      // Numeric decodes into the right bin: within bin width of original.
      EXPECT_NEAR(decoded.NumValue(r, 1), t.NumValue(r, 1), 30.0);
    }
  }
}

TEST(EncoderTest, WeightedRandomDecodeProducesValidCodes) {
  Table t = SmallTable();
  auto enc = TupleEncoder::Fit(t, {});
  ASSERT_TRUE(enc.ok());
  util::Rng rng(5);
  nn::Matrix logits(50, enc->encoded_dim());  // all-zero logits: p = 0.5
  auto decoded = enc->DecodeLogits(
      logits, {DecodeStrategy::kWeightedRandom, 8}, rng);
  for (size_t r = 0; r < decoded.num_rows(); ++r) {
    EXPECT_GE(decoded.CatCode(r, 0), 0);
    EXPECT_LT(decoded.CatCode(r, 0), 3);
  }
}

TEST(EncoderTest, NaiveDecodeClampsInvalidBinaryCodes) {
  // Cardinality 3 in 2 bits: pattern 11 (=3) is invalid and must clamp to 2.
  Table t = SmallTable();
  EncoderOptions opts;
  opts.kind = EncodingKind::kBinary;
  auto enc = TupleEncoder::Fit(t, opts);
  ASSERT_TRUE(enc.ok());
  util::Rng rng(7);
  // Strong logits forcing both bits of the categorical to 1.
  nn::Matrix logits(20, enc->encoded_dim(), 12.0f);
  auto decoded =
      enc->DecodeLogits(logits, {DecodeStrategy::kNaive, 1}, rng);
  for (size_t r = 0; r < decoded.num_rows(); ++r) {
    EXPECT_EQ(decoded.CatCode(r, 0), 2);
  }
}

TEST(EncoderTest, SerializeRoundTrip) {
  auto table = data::GenerateCensus({.rows = 500, .seed = 11});
  EncoderOptions opts;
  opts.kind = EncodingKind::kBinary;
  opts.numeric_bins = 16;
  auto enc = TupleEncoder::Fit(table, opts);
  ASSERT_TRUE(enc.ok());

  util::ByteWriter w;
  enc->Serialize(w);
  util::ByteReader r(w.bytes());
  auto back = TupleEncoder::Deserialize(r);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->encoded_dim(), enc->encoded_dim());
  EXPECT_TRUE(back->schema() == enc->schema());

  auto m1 = enc->EncodeAll(table);
  auto m2 = back->EncodeAll(table);
  ASSERT_EQ(m1.size(), m2.size());
  for (size_t i = 0; i < m1.size(); i += 13) {
    EXPECT_EQ(m1.data()[i], m2.data()[i]);
  }
}

TEST(EncoderTest, EncodedDimsMatchPaperFormulas) {
  auto table = data::GenerateCensus({.rows = 1000, .seed = 13});
  EncoderOptions one_hot{EncodingKind::kOneHot, 32};
  EncoderOptions binary{EncodingKind::kBinary, 32};
  auto e1 = TupleEncoder::Fit(table, one_hot);
  auto e2 = TupleEncoder::Fit(table, binary);
  ASSERT_TRUE(e1.ok());
  ASSERT_TRUE(e2.ok());
  // Binary is exponentially denser than one-hot (Sec. IV-E).
  EXPECT_LT(e2->encoded_dim(), e1->encoded_dim() / 2);
  size_t expect_one_hot = 0, expect_binary = 0;
  for (const auto& layout : e1->layout()) {
    expect_one_hot += layout.cardinality;
  }
  for (const auto& layout : e2->layout()) {
    size_t bits = 1;
    while ((1 << bits) < layout.cardinality) ++bits;
    expect_binary += bits;
  }
  EXPECT_EQ(e1->encoded_dim(), expect_one_hot);
  EXPECT_EQ(e2->encoded_dim(), expect_binary);
}

}  // namespace
}  // namespace deepaqp::encoding
