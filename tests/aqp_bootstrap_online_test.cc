#include <cmath>

#include <gtest/gtest.h>

#include "aqp/bootstrap.h"
#include "aqp/estimator.h"
#include "aqp/executor.h"
#include "aqp/online.h"
#include "data/generators.h"

namespace deepaqp::aqp {
namespace {

TEST(BootstrapTest, RejectsBadOptions) {
  auto table = data::GenerateTaxi({.rows = 500, .seed = 1});
  AggregateQuery q;
  q.agg = AggFunc::kCount;
  BootstrapOptions bad;
  bad.resamples = 1;
  EXPECT_FALSE(BootstrapEstimate(q, table, 500, bad).ok());
  bad = BootstrapOptions{};
  bad.confidence = 1.5;
  EXPECT_FALSE(BootstrapEstimate(q, table, 500, bad).ok());
}

TEST(BootstrapTest, PointEstimateMatchesEstimator) {
  auto table = data::GenerateTaxi({.rows = 5000, .seed = 2});
  util::Rng rng(3);
  auto sample = table.SampleRows(500, rng);
  AggregateQuery q;
  q.agg = AggFunc::kAvg;
  q.measure_attr = table.schema().IndexOf("fare");
  auto boot = BootstrapEstimate(q, sample, table.num_rows(), {});
  auto plain = EstimateFromSample(q, sample, table.num_rows());
  ASSERT_TRUE(boot.ok());
  ASSERT_TRUE(plain.ok());
  EXPECT_DOUBLE_EQ(boot->Scalar(), plain->Scalar());
  EXPECT_GT(boot->groups[0].ci_half_width, 0.0);
}

TEST(BootstrapTest, CiCoversTruthAtNominalRate) {
  auto table = data::GenerateCensus({.rows = 20000, .seed = 4});
  AggregateQuery q;
  q.agg = AggFunc::kAvg;
  q.measure_attr = table.schema().IndexOf("age");
  const double truth = ExecuteExact(q, table)->Scalar();
  util::Rng rng(5);
  int covered = 0;
  const int trials = 40;
  BootstrapOptions opts;
  opts.resamples = 120;
  for (int t = 0; t < trials; ++t) {
    auto sample = table.SampleRows(400, rng);
    opts.seed = 900 + t;
    auto est = BootstrapEstimate(q, sample, table.num_rows(), opts);
    ASSERT_TRUE(est.ok());
    if (std::abs(est->Scalar() - truth) <=
        est->groups[0].ci_half_width) {
      ++covered;
    }
  }
  EXPECT_GE(covered, 32);  // nominal 95% with slack
}

TEST(BootstrapTest, BootstrapWidthTracksCltWidth) {
  auto table = data::GenerateCensus({.rows = 10000, .seed = 6});
  AggregateQuery q;
  q.agg = AggFunc::kSum;
  q.measure_attr = table.schema().IndexOf("hours_per_week");
  util::Rng rng(7);
  auto sample = table.SampleRows(600, rng);
  auto boot = BootstrapEstimate(q, sample, table.num_rows(), {});
  auto plain = EstimateFromSample(q, sample, table.num_rows());
  ASSERT_TRUE(boot.ok());
  const double bw = boot->groups[0].ci_half_width;
  const double cw = plain->groups[0].ci_half_width;
  EXPECT_GT(bw, 0.5 * cw);
  EXPECT_LT(bw, 2.0 * cw);
}

TEST(BootstrapTest, GroupByIntervalsPerGroup) {
  auto table = data::GenerateTaxi({.rows = 8000, .seed = 8});
  AggregateQuery q;
  q.agg = AggFunc::kAvg;
  q.measure_attr = table.schema().IndexOf("fare");
  q.group_by_attr = table.schema().IndexOf("pickup_borough");
  util::Rng rng(9);
  auto sample = table.SampleRows(800, rng);
  auto boot = BootstrapEstimate(q, sample, table.num_rows(), {});
  ASSERT_TRUE(boot.ok());
  ASSERT_GE(boot->groups.size(), 3u);
  for (const auto& g : boot->groups) {
    EXPECT_GT(g.ci_half_width, 0.0);
  }
}

TEST(OnlineAggregatorTest, RequiresDataBeforeCurrent) {
  AggregateQuery q;
  q.agg = AggFunc::kCount;
  OnlineAggregator agg(q, 1000);
  EXPECT_FALSE(agg.Current().ok());
  EXPECT_FALSE(agg.Converged(0.1));
}

TEST(OnlineAggregatorTest, MatchesBatchEstimator) {
  auto table = data::GenerateTaxi({.rows = 6000, .seed = 10});
  util::Rng rng(11);
  auto sample = table.SampleRows(900, rng);
  AggregateQuery q;
  q.agg = AggFunc::kAvg;
  q.measure_attr = table.schema().IndexOf("fare");
  q.group_by_attr = table.schema().IndexOf("payment_type");

  OnlineAggregator agg(q, table.num_rows());
  // Feed in three uneven batches.
  std::vector<size_t> idx;
  for (size_t r = 0; r < sample.num_rows(); ++r) idx.push_back(r);
  ASSERT_TRUE(agg.AddBatch(sample.Gather({idx.begin(), idx.begin() + 100}))
                  .ok());
  ASSERT_TRUE(
      agg.AddBatch(sample.Gather({idx.begin() + 100, idx.begin() + 500}))
          .ok());
  ASSERT_TRUE(
      agg.AddBatch(sample.Gather({idx.begin() + 500, idx.end()})).ok());
  EXPECT_EQ(agg.tuples_seen(), 900u);

  auto online = agg.Current();
  auto batch = EstimateFromSample(q, sample, table.num_rows());
  ASSERT_TRUE(online.ok());
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(online->groups.size(), batch->groups.size());
  for (const auto& g : online->groups) {
    const GroupValue* b = batch->Find(g.group);
    ASSERT_NE(b, nullptr);
    EXPECT_NEAR(g.value, b->value, 1e-9);
    EXPECT_NEAR(g.ci_half_width, b->ci_half_width, 1e-6);
  }
}

TEST(OnlineAggregatorTest, ConvergesWithMoreData) {
  auto table = data::GenerateCensus({.rows = 20000, .seed = 12});
  AggregateQuery q;
  q.agg = AggFunc::kAvg;
  q.measure_attr = table.schema().IndexOf("age");
  OnlineAggregator agg(q, table.num_rows());
  util::Rng rng(13);
  int batches = 0;
  while (!agg.Converged(0.01) && batches < 100) {
    ASSERT_TRUE(agg.AddBatch(table.SampleRows(200, rng)).ok());
    ++batches;
  }
  EXPECT_TRUE(agg.Converged(0.01));
  // CI of an AVG at 1% needs on the order of thousands of tuples.
  EXPECT_GT(batches, 1);
  const double truth = ExecuteExact(q, table)->Scalar();
  EXPECT_NEAR(agg.Current()->Scalar(), truth, truth * 0.02);
}

TEST(OnlineAggregatorTest, RejectsQuantiles) {
  auto table = data::GenerateTaxi({.rows = 100, .seed = 14});
  AggregateQuery q;
  q.agg = AggFunc::kQuantile;
  q.measure_attr = table.schema().IndexOf("fare");
  OnlineAggregator agg(q, 100);
  EXPECT_FALSE(agg.AddBatch(table).ok());
}

TEST(OnlineAggregatorTest, CountScalesWithPopulation) {
  auto table = data::GenerateTaxi({.rows = 1000, .seed = 15});
  AggregateQuery q;
  q.agg = AggFunc::kCount;
  OnlineAggregator agg(q, 50000);
  ASSERT_TRUE(agg.AddBatch(table).ok());
  EXPECT_DOUBLE_EQ(agg.Current()->Scalar(), 50000.0);
}

}  // namespace
}  // namespace deepaqp::aqp
