#include <cmath>

#include <gtest/gtest.h>

#include "aqp/evaluation.h"
#include "aqp/executor.h"
#include "aqp/metrics.h"
#include "baselines/histogram.h"
#include "baselines/wavelet.h"
#include "data/generators.h"
#include "data/workload.h"

namespace deepaqp::baselines {
namespace {

TEST(HistogramModelTest, RejectsEmptyTable) {
  relation::Schema s;
  ASSERT_TRUE(s.AddAttribute("x", relation::AttrType::kNumeric).ok());
  relation::Table empty(s);
  EXPECT_FALSE(HistogramModel::Build(empty, {}).ok());
}

TEST(HistogramModelTest, PreservesMarginals) {
  auto table = data::GenerateCensus({.rows = 10000, .seed = 1});
  auto model = HistogramModel::Build(table, {});
  ASSERT_TRUE(model.ok());
  util::Rng rng(2);
  auto sample = model->Generate(10000, rng);
  ASSERT_EQ(sample.num_rows(), 10000u);

  // Categorical marginal (sex) and numeric mean (age) preserved.
  auto frac = [](const relation::Table& t, size_t col, int32_t code) {
    size_t hits = 0;
    for (size_t r = 0; r < t.num_rows(); ++r) {
      hits += t.CatCode(r, col) == code;
    }
    return static_cast<double>(hits) / t.num_rows();
  };
  const auto sex = static_cast<size_t>(table.schema().IndexOf("sex"));
  EXPECT_NEAR(frac(sample, sex, 0), frac(table, sex, 0), 0.03);

  aqp::AggregateQuery q;
  q.agg = aqp::AggFunc::kAvg;
  q.measure_attr = table.schema().IndexOf("age");
  const double truth = aqp::ExecuteExact(q, table)->Scalar();
  const double est = aqp::ExecuteExact(q, sample)->Scalar();
  EXPECT_LT(aqp::RelativeError(est, truth), 0.05);
}

TEST(HistogramModelTest, LosesCorrelations) {
  // The independence assumption breaks correlated predicates: the planted
  // education -> education_num correlation must be (mostly) gone.
  auto table = data::GenerateCensus({.rows = 8000, .seed = 3});
  auto model = HistogramModel::Build(table, {});
  ASSERT_TRUE(model.ok());
  util::Rng rng(4);
  auto sample = model->Generate(8000, rng);
  auto corr = [](const relation::Table& t, size_t a, size_t b) {
    double ma = 0, mb = 0;
    const size_t n = t.num_rows();
    for (size_t r = 0; r < n; ++r) {
      ma += t.CellAsDouble(r, a);
      mb += t.CellAsDouble(r, b);
    }
    ma /= n;
    mb /= n;
    double sab = 0, saa = 0, sbb = 0;
    for (size_t r = 0; r < n; ++r) {
      const double da = t.CellAsDouble(r, a) - ma;
      const double db = t.CellAsDouble(r, b) - mb;
      sab += da * db;
      saa += da * da;
      sbb += db * db;
    }
    return sab / std::sqrt(saa * sbb);
  };
  const auto edu = static_cast<size_t>(table.schema().IndexOf("education"));
  const auto edu_num =
      static_cast<size_t>(table.schema().IndexOf("education_num"));
  EXPECT_LT(std::abs(corr(sample, edu, edu_num)), 0.2);
  EXPECT_GT(std::abs(corr(table, edu, edu_num)), 0.8);
}

TEST(HistogramModelTest, SamplerAndSize) {
  auto table = data::GenerateTaxi({.rows = 3000, .seed = 5});
  auto model = HistogramModel::Build(table, {});
  ASSERT_TRUE(model.ok());
  auto sampler = model->MakeSampler();
  util::Rng rng(6);
  EXPECT_EQ(sampler(100, rng).num_rows(), 100u);
  EXPECT_GT(model->SizeBytes(), 100u);
  EXPECT_LT(model->SizeBytes(), 100000u);
}

TEST(WaveletTest, HaarTransformRoundTrips) {
  std::vector<double> v = {4, 2, 5, 5, 1, 0, 7, 2};
  auto orig = v;
  WaveletModel::HaarForward(&v);
  WaveletModel::HaarInverse(&v);
  for (size_t i = 0; i < v.size(); ++i) {
    EXPECT_NEAR(v[i], orig[i], 1e-9);
  }
}

TEST(WaveletTest, HaarPreservesEnergy) {
  std::vector<double> v = {1, 2, 3, 4};
  double energy = 0;
  for (double x : v) energy += x * x;
  WaveletModel::HaarForward(&v);
  double tenergy = 0;
  for (double x : v) tenergy += x * x;
  EXPECT_NEAR(energy, tenergy, 1e-9);
}

TEST(WaveletModelTest, PreservesCoarseMarginals) {
  auto table = data::GenerateTaxi({.rows = 8000, .seed = 7});
  WaveletModel::Options opts;
  opts.coefficients_kept = 16;
  auto model = WaveletModel::Build(table, opts);
  ASSERT_TRUE(model.ok());
  util::Rng rng(8);
  auto sample = model->Generate(8000, rng);

  aqp::AggregateQuery q;
  q.agg = aqp::AggFunc::kAvg;
  q.measure_attr = table.schema().IndexOf("fare");
  const double truth = aqp::ExecuteExact(q, table)->Scalar();
  const double est = aqp::ExecuteExact(q, sample)->Scalar();
  EXPECT_LT(aqp::RelativeError(est, truth), 0.25);
}

TEST(WaveletModelTest, CompressionLosesDetailComparedToHistogram) {
  // With very few retained coefficients, the wavelet marginal is coarser
  // than the histogram's: RED over a workload should not be better.
  auto table = data::GenerateCensus({.rows = 6000, .seed = 9});
  WaveletModel::Options wopts;
  wopts.coefficients_kept = 4;
  auto wavelet = WaveletModel::Build(table, wopts);
  auto hist = HistogramModel::Build(table, {});
  ASSERT_TRUE(wavelet.ok());
  ASSERT_TRUE(hist.ok());

  data::WorkloadConfig wcfg;
  wcfg.num_queries = 25;
  wcfg.seed = 10;
  auto workload = data::GenerateWorkload(table, wcfg);
  aqp::EvalOptions eopts;
  eopts.num_trials = 3;
  eopts.sample_fraction = 0.05;
  auto red_w = aqp::RelativeErrorDifferences(workload, table,
                                             wavelet->MakeSampler(), eopts);
  auto red_h = aqp::RelativeErrorDifferences(workload, table,
                                             hist->MakeSampler(), eopts);
  ASSERT_TRUE(red_w.ok());
  ASSERT_TRUE(red_h.ok());
  const double mw = aqp::DistributionSummary::FromValues(*red_w).median;
  const double mh = aqp::DistributionSummary::FromValues(*red_h).median;
  EXPECT_GE(mw, mh - 0.05);
}

TEST(WaveletModelTest, SizeScalesWithCoefficients) {
  auto table = data::GenerateTaxi({.rows = 2000, .seed = 11});
  WaveletModel::Options small, large;
  small.coefficients_kept = 4;
  large.coefficients_kept = 32;
  auto a = WaveletModel::Build(table, small);
  auto b = WaveletModel::Build(table, large);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_LT(a->SizeBytes(), b->SizeBytes());
}

}  // namespace
}  // namespace deepaqp::baselines
