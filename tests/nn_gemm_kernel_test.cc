// Exhaustive correctness suite for the blocked GEMM kernel layer
// (nn/kernels.h) against the retained naive reference:
//  * all four transpose combinations x odd/prime shapes straddling every
//    panel boundary x beta in {0, 0.5, 1}, within 1e-5 relative error;
//  * ShardedGemmTN bit-identical across thread counts with the blocked
//    kernel, and within tolerance of the reference;
//  * fused bias+activation forwards equal to the unfused pipeline exactly;
//  * the vectorized sigmoid within 1e-5 of the std::exp form, with the
//    Bernoulli fusion consuming the same RNG stream;
//  * the kernel-kind escape hatch actually switches implementations.

#include "nn/kernels.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "nn/arena.h"
#include "nn/layers.h"
#include "nn/matrix.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace deepaqp::nn {
namespace {

/// Restores the previously active kernel kind when a test scope exits.
class ScopedKernel {
 public:
  explicit ScopedKernel(GemmKernelKind kind) : prev_(ActiveGemmKernel()) {
    SetGemmKernel(kind);
  }
  ~ScopedKernel() { SetGemmKernel(prev_); }

 private:
  GemmKernelKind prev_;
};

Matrix RandomMatrix(size_t rows, size_t cols, util::Rng& rng) {
  Matrix m(rows, cols);
  for (size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng.NextGaussian());
  }
  return m;
}

Matrix Abs(const Matrix& m) {
  Matrix out(m.rows(), m.cols());
  for (size_t i = 0; i < m.size(); ++i) out.data()[i] = std::abs(m.data()[i]);
  return out;
}

/// Max elementwise error between two GEMM results, normalized by the
/// forward-error scale of the accumulation: |alpha| * (|A| @ |B|)_ij +
/// |beta * C0_ij| + 1. Reordering k-sums (what the blocked kernel does)
/// perturbs each element by O(eps) of that magnitude sum, so this is the
/// quantity the 1e-5 contract is stated on; a plain |x - y| / |x| bound
/// would spuriously flag near-cancelling accumulations.
double GemmRelError(const Matrix& a, bool ta, const Matrix& b, bool tb,
                    float alpha, float beta, const Matrix* c0,
                    const Matrix& want, const Matrix& got) {
  EXPECT_EQ(want.rows(), got.rows());
  EXPECT_EQ(want.cols(), got.cols());
  Matrix mag;
  ReferenceGemm(Abs(a), ta, Abs(b), tb, std::abs(alpha), 0.0f, &mag);
  double worst = 0.0;
  for (size_t i = 0; i < want.size(); ++i) {
    double scale = 1.0 + mag.data()[i];
    if (c0 != nullptr) scale += std::abs(beta * c0->data()[i]);
    worst = std::max(
        worst, std::abs(static_cast<double>(want.data()[i]) -
                        static_cast<double>(got.data()[i])) / scale);
  }
  return worst;
}

bool BitIdentical(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a.data()[i] != b.data()[i]) return false;
  }
  return true;
}

constexpr double kTol = 1e-5;

/// The fast kernels under test: always the blocked kernel, plus the simd
/// backend when this machine can run it (the dedicated simd suite lives in
/// nn_simd_backend_test.cc; sweeping it here too keeps the exhaustive
/// transpose/shape harness authoritative for every dispatchable backend).
std::vector<GemmKernelKind> FastKernels() {
  std::vector<GemmKernelKind> kinds = {GemmKernelKind::kBlocked};
  if (SimdKernelAvailable()) kinds.push_back(GemmKernelKind::kSimd);
  return kinds;
}

// Shapes straddling every blocking boundary: micro-tile edges (kMr=4,
// kNr=8), sub-tile ragged cases, and a size past the k cache block would
// be slow to sweep cubically, so 129 covers "multiple panels + remainder".
const size_t kDims[] = {1, 2, 3, 5, 7, 13, 17, 33, 129};

TEST(GemmKernelTest, FastKernelsMatchReferenceAllTransposesAllShapes) {
  util::Rng rng(20240811);
  const float kBetas[] = {0.0f, 0.5f, 1.0f};
  const std::vector<GemmKernelKind> fast = FastKernels();
  for (size_t m : kDims) {
    for (size_t k : kDims) {
      for (size_t n : kDims) {
        // Keep the cubic sweep tractable: skip triples where every dim is
        // large (covered by the dedicated large-shape test below).
        if (m * k * n > 200000) continue;
        for (bool ta : {false, true}) {
          for (bool tb : {false, true}) {
            const Matrix a = ta ? RandomMatrix(k, m, rng)
                                : RandomMatrix(m, k, rng);
            const Matrix b = tb ? RandomMatrix(n, k, rng)
                                : RandomMatrix(k, n, rng);
            for (float beta : kBetas) {
              const Matrix c0 = RandomMatrix(m, n, rng);
              Matrix want = c0;
              {
                ScopedKernel naive(GemmKernelKind::kNaive);
                Gemm(a, ta, b, tb, 1.25f, beta, &want);
              }
              for (GemmKernelKind kind : fast) {
                Matrix got = c0;
                ScopedKernel active(kind);
                Gemm(a, ta, b, tb, 1.25f, beta, &got);
                EXPECT_LE(GemmRelError(a, ta, b, tb, 1.25f, beta, &c0, want,
                                       got),
                          kTol)
                    << GemmKernelKindName(kind) << " m=" << m << " k=" << k
                    << " n=" << n << " ta=" << ta << " tb=" << tb
                    << " beta=" << beta;
              }
            }
          }
        }
      }
    }
  }
}

TEST(GemmKernelTest, FastKernelsMatchReferenceOnVaeShapes) {
  // The shapes the throughput target is stated on: batch 256 x hidden
  // 64..512 (multiple K cache blocks at 512).
  util::Rng rng(7);
  for (size_t hidden : {64u, 128u, 256u, 512u}) {
    const Matrix a = RandomMatrix(256, hidden, rng);
    const Matrix b = RandomMatrix(hidden, hidden, rng);
    Matrix want;
    {
      ScopedKernel naive(GemmKernelKind::kNaive);
      Gemm(a, false, b, false, 1.0f, 0.0f, &want);
    }
    for (GemmKernelKind kind : FastKernels()) {
      Matrix got;
      ScopedKernel active(kind);
      Gemm(a, false, b, false, 1.0f, 0.0f, &got);
      EXPECT_LE(GemmRelError(a, false, b, false, 1.0f, 0.0f, nullptr, want,
                             got),
                kTol)
          << GemmKernelKindName(kind) << " hidden=" << hidden;
    }
  }
}

TEST(GemmKernelTest, BlockedGemmBitIdenticalAcrossThreadCounts) {
  ScopedKernel blocked(GemmKernelKind::kBlocked);
  util::Rng rng(99);
  const Matrix a = RandomMatrix(257, 130, rng);
  const Matrix b = RandomMatrix(130, 65, rng);
  util::SetGlobalThreads(1);
  Matrix base;
  Gemm(a, false, b, false, 1.0f, 0.0f, &base);
  for (int threads : {2, 3, 8}) {
    util::SetGlobalThreads(threads);
    Matrix c;
    Gemm(a, false, b, false, 1.0f, 0.0f, &c);
    EXPECT_TRUE(BitIdentical(base, c)) << "threads=" << threads;
  }
  util::SetGlobalThreads(0);
}

TEST(GemmKernelTest, ShardedGemmTNBitIdenticalAcrossThreadCounts) {
  ScopedKernel blocked(GemmKernelKind::kBlocked);
  util::Rng rng(123);
  const Matrix a = RandomMatrix(300, 33, rng);  // batch x in
  const Matrix b = RandomMatrix(300, 17, rng);  // batch x out
  util::SetGlobalThreads(1);
  Matrix base(33, 17);
  ShardedGemmTN(a, b, &base);
  for (int threads : {2, 8}) {
    util::SetGlobalThreads(threads);
    Matrix c(33, 17);
    ShardedGemmTN(a, b, &c);
    EXPECT_TRUE(BitIdentical(base, c)) << "threads=" << threads;
  }
  util::SetGlobalThreads(0);

  // And the blocked shard kernel agrees with the naive shard kernel.
  Matrix naive_c(33, 17);
  {
    ScopedKernel naive(GemmKernelKind::kNaive);
    ShardedGemmTN(a, b, &naive_c);
  }
  EXPECT_LE(
      GemmRelError(a, true, b, false, 1.0f, 0.0f, nullptr, naive_c, base),
      kTol);
}

TEST(GemmKernelTest, FusedLinearForwardMatchesUnfusedPipeline) {
  util::Rng rng(55);
  const Activation kActs[] = {Activation::kIdentity, Activation::kRelu,
                              Activation::kLeakyRelu, Activation::kSigmoid,
                              Activation::kTanh};
  for (size_t batch : {1u, 5u, 33u, 129u}) {
    for (size_t in : {3u, 17u, 64u}) {
      for (size_t out_dim : {1u, 7u, 65u}) {
        const Matrix x = RandomMatrix(batch, in, rng);
        const Matrix w = RandomMatrix(in, out_dim, rng);
        const Matrix bias = RandomMatrix(1, out_dim, rng);
        for (Activation act : kActs) {
          ScopedKernel blocked(GemmKernelKind::kBlocked);
          Matrix fused;
          FusedLinearForward(x, w, bias, act, 0.2f, &fused);
          // Unfused: same blocked GEMM, then bias, then activation.
          Matrix plain;
          Gemm(x, false, w, false, 1.0f, 0.0f, &plain);
          AddRowBroadcast(bias, &plain);
          ApplyActivation(act, 0.2f, plain.data(), plain.size());
          EXPECT_TRUE(BitIdentical(plain, fused))
              << "batch=" << batch << " in=" << in << " out=" << out_dim
              << " act=" << static_cast<int>(act);
        }
      }
    }
  }
}

TEST(GemmKernelTest, FusedLinearForwardSkipsEmptyBias) {
  util::Rng rng(56);
  const Matrix x = RandomMatrix(9, 13, rng);
  const Matrix w = RandomMatrix(13, 6, rng);
  Matrix no_bias;  // 0 x 0 sentinel
  Matrix fused;
  FusedLinearForward(x, w, no_bias, Activation::kIdentity, 0.0f, &fused);
  Matrix plain;
  Gemm(x, false, w, false, 1.0f, 0.0f, &plain);
  EXPECT_TRUE(BitIdentical(plain, fused));
}

TEST(GemmKernelTest, InferenceForwardIntoMatchesSequentialForward) {
  util::Rng rng(77);
  auto trunk = MakeMlpTrunk(19, 32, 2, rng);
  trunk->Add(std::make_unique<Linear>(32, 11, rng));
  trunk->Add(std::make_unique<Sigmoid>());
  const Matrix x = RandomMatrix(37, 19, rng);
  const Matrix want = trunk->Forward(x);
  ScratchArena arena;
  Matrix got;
  InferenceForwardInto(*trunk, x, &got, &arena);
  EXPECT_TRUE(BitIdentical(want, got));
  // Second pass reuses pooled buffers and must give the same answer.
  Matrix again;
  InferenceForwardInto(*trunk, x, &again, &arena);
  EXPECT_TRUE(BitIdentical(want, again));
  EXPECT_GT(arena.pooled(), 0u);
}

TEST(SigmoidKernelTest, VectorizedSigmoidWithinTolerance) {
  ScopedKernel blocked(GemmKernelKind::kBlocked);
  std::vector<float> x;
  for (float v = -30.0f; v <= 30.0f; v += 0.01f) x.push_back(v);
  std::vector<float> got(x.size());
  SigmoidVec(x.data(), got.data(), x.size());
  for (size_t i = 0; i < x.size(); ++i) {
    const double want = 1.0 / (1.0 + std::exp(-static_cast<double>(x[i])));
    EXPECT_NEAR(got[i], want, 1e-5) << "x=" << x[i];
  }
}

TEST(SigmoidKernelTest, BernoulliFusionConsumesSameRngStream) {
  ScopedKernel blocked(GemmKernelKind::kBlocked);
  util::Rng rng_a(31337);
  util::Rng rng_b(31337);
  std::vector<float> logits;
  util::Rng gen(4);
  for (size_t i = 0; i < 1000; ++i) {
    logits.push_back(static_cast<float>(gen.NextGaussian() * 3.0));
  }
  std::vector<float> fused(logits.size());
  SigmoidBernoulliVec(logits.data(), logits.size(), rng_a, fused.data());
  // Scalar form using the vectorized probabilities: identical decisions and
  // identical stream position afterwards.
  std::vector<float> probs(logits.size());
  SigmoidVec(logits.data(), probs.data(), logits.size());
  for (size_t i = 0; i < logits.size(); ++i) {
    const float want = rng_b.Bernoulli(probs[i]) ? 1.0f : 0.0f;
    EXPECT_EQ(fused[i], want) << "i=" << i;
  }
  EXPECT_EQ(rng_a.NextUint64(), rng_b.NextUint64());
}

TEST(KernelDispatchTest, EscapeHatchSwitchesImplementations) {
  // kNaive must reproduce ReferenceGemm bit-for-bit (it IS the reference);
  // the blocked kernel differs in summation order, so on a shape with a
  // long k accumulation the bits generally differ while values agree.
  util::Rng rng(2718);
  const Matrix a = RandomMatrix(16, 500, rng);
  const Matrix b = RandomMatrix(500, 16, rng);
  Matrix ref;
  ReferenceGemm(a, false, b, false, 1.0f, 0.0f, &ref);
  Matrix via_naive;
  {
    ScopedKernel naive(GemmKernelKind::kNaive);
    Gemm(a, false, b, false, 1.0f, 0.0f, &via_naive);
  }
  EXPECT_TRUE(BitIdentical(ref, via_naive));
  Matrix via_blocked;
  {
    ScopedKernel blocked(GemmKernelKind::kBlocked);
    Gemm(a, false, b, false, 1.0f, 0.0f, &via_blocked);
  }
  EXPECT_LE(GemmRelError(a, false, b, false, 1.0f, 0.0f, nullptr, ref,
                         via_blocked),
            kTol);
  if (SimdKernelAvailable()) {
    Matrix via_simd;
    ScopedKernel simd(GemmKernelKind::kSimd);
    Gemm(a, false, b, false, 1.0f, 0.0f, &via_simd);
    EXPECT_LE(GemmRelError(a, false, b, false, 1.0f, 0.0f, nullptr, ref,
                           via_simd),
              kTol);
  }
}

TEST(KernelDispatchTest, KindNamesRoundTripThroughParse) {
  for (GemmKernelKind kind :
       {GemmKernelKind::kNaive, GemmKernelKind::kBlocked,
        GemmKernelKind::kSimd}) {
    GemmKernelKind parsed;
    ASSERT_TRUE(ParseGemmKernelKind(GemmKernelKindName(kind), &parsed).ok());
    EXPECT_EQ(parsed, kind);
  }
  GemmKernelKind parsed;
  EXPECT_TRUE(ParseGemmKernelKind("auto", &parsed).ok());
  const util::Status bad = ParseGemmKernelKind("warp-drive", &parsed);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.code(), util::StatusCode::kInvalidArgument);
}

TEST(ScratchArenaTest, AcquireReleaseRoundTrip) {
  ScratchArena arena;
  EXPECT_EQ(arena.pooled(), 0u);
  Matrix m = arena.Acquire();
  m.Resize(4, 4);
  m.Fill(1.0f);
  arena.Release(std::move(m));
  EXPECT_EQ(arena.pooled(), 1u);
  Matrix back = arena.Acquire();
  EXPECT_EQ(arena.pooled(), 0u);
  back.Resize(2, 8);  // same element count: must not allocate, just reshape
  EXPECT_EQ(back.rows(), 2u);
  EXPECT_EQ(back.cols(), 8u);
}

}  // namespace
}  // namespace deepaqp::nn
