// Property tests of the vectorized query engine: for random tables x query
// shapes x selectivities (including empty selections and AVG-of-empty), the
// vector engine must produce results bit-identical to the scalar path, at
// every --threads setting, across ExecuteExact, EstimateFromSample,
// BootstrapEstimate, Selectivity, and OnlineAggregator.

#include "aqp/engine.h"

#include <cstring>

#include <gtest/gtest.h>

#include "aqp/bootstrap.h"
#include "aqp/estimator.h"
#include "aqp/executor.h"
#include "aqp/online.h"
#include "data/generators.h"
#include "data/workload.h"
#include "util/thread_pool.h"

namespace deepaqp::aqp {
namespace {

using relation::AttrType;
using relation::Datum;
using relation::Schema;
using relation::Table;

uint64_t Bits(double x) {
  uint64_t b = 0;
  std::memcpy(&b, &x, sizeof(b));
  return b;
}

/// Bit-level equality, so NaN == NaN and +0.0 != -0.0: the engines must
/// agree on the exact doubles, not just approximately.
void ExpectBitIdentical(const QueryResult& scalar, const QueryResult& vector,
                        const std::string& context) {
  ASSERT_EQ(scalar.groups.size(), vector.groups.size()) << context;
  for (size_t i = 0; i < scalar.groups.size(); ++i) {
    const GroupValue& s = scalar.groups[i];
    const GroupValue& v = vector.groups[i];
    EXPECT_EQ(s.group, v.group) << context << " group " << i;
    EXPECT_EQ(s.support, v.support) << context << " group " << i;
    EXPECT_EQ(Bits(s.value), Bits(v.value))
        << context << " group " << i << " value " << s.value << " vs "
        << v.value;
    EXPECT_EQ(Bits(s.ci_half_width), Bits(v.ci_half_width))
        << context << " group " << i << " ci " << s.ci_half_width << " vs "
        << v.ci_half_width;
  }
}

/// Restores the ambient engine choice so test order never leaks state.
struct EngineGuard {
  EngineKind saved = ActiveEngine();
  ~EngineGuard() { SetEngine(saved); }
};

template <typename Fn>
auto WithEngine(EngineKind kind, Fn&& fn) {
  const EngineKind saved = ActiveEngine();
  SetEngine(kind);
  auto result = fn();
  SetEngine(saved);
  return result;
}

TEST(EngineTest, NameAndOverrideRoundTrip) {
  EngineGuard guard;
  EXPECT_STREQ(EngineName(EngineKind::kScalar), "scalar");
  EXPECT_STREQ(EngineName(EngineKind::kVector), "vector");
  SetEngine(EngineKind::kScalar);
  EXPECT_EQ(ActiveEngine(), EngineKind::kScalar);
  SetEngine(EngineKind::kVector);
  EXPECT_EQ(ActiveEngine(), EngineKind::kVector);
}

TEST(EngineTest, SelectionVectorResizeAndCount) {
  SelectionVector sel;
  sel.Resize(130);
  sel.Set(0);
  sel.Set(63);
  sel.Set(64);
  sel.Set(129);
  EXPECT_EQ(sel.CountRange(0, 130), 4u);
  EXPECT_EQ(sel.CountRange(1, 129), 2u);
  EXPECT_EQ(sel.CountRange(64, 64), 0u);
  EXPECT_TRUE(sel.Test(63));
  EXPECT_FALSE(sel.Test(62));
  // Shrinking clears the tail so a later regrow starts from zero bits.
  sel.Resize(64);
  sel.Resize(130);
  EXPECT_EQ(sel.CountRange(0, 130), 2u);
}

TEST(EngineTest, RandomizedWorkloadBitIdenticalAcrossEnginesAndThreads) {
  EngineGuard guard;
  struct DatasetSpec {
    const char* name;
    Table table;
  };
  std::vector<DatasetSpec> datasets;
  datasets.push_back({"census", data::GenerateCensus({.rows = 2000, .seed = 11})});
  datasets.push_back({"taxi", data::GenerateTaxi({.rows = 2500, .seed = 12})});

  for (const DatasetSpec& ds : datasets) {
    data::WorkloadConfig wc;
    wc.num_queries = 25;
    wc.seed = 31;
    wc.group_by_prob = 0.5;
    wc.quantile_prob = 0.25;
    const auto workload = data::GenerateWorkload(ds.table, wc);
    ASSERT_FALSE(workload.empty());
    const size_t population = ds.table.num_rows() * 10;

    for (int threads : {1, 3}) {
      util::SetGlobalThreads(threads);
      for (size_t qi = 0; qi < workload.size(); ++qi) {
        const AggregateQuery& q = workload[qi];
        const std::string ctx = std::string(ds.name) + " q" +
                                std::to_string(qi) + " threads=" +
                                std::to_string(threads);

        auto exact_s = WithEngine(EngineKind::kScalar, [&] {
          return ExecuteExact(q, ds.table);
        });
        auto exact_v = WithEngine(EngineKind::kVector, [&] {
          return ExecuteExact(q, ds.table);
        });
        ASSERT_TRUE(exact_s.ok() && exact_v.ok()) << ctx;
        ExpectBitIdentical(*exact_s, *exact_v, ctx + " exact");

        auto est_s = WithEngine(EngineKind::kScalar, [&] {
          return EstimateFromSample(q, ds.table, population);
        });
        auto est_v = WithEngine(EngineKind::kVector, [&] {
          return EstimateFromSample(q, ds.table, population);
        });
        ASSERT_TRUE(est_s.ok() && est_v.ok()) << ctx;
        ExpectBitIdentical(*est_s, *est_v, ctx + " estimate");

        const double sel_s = WithEngine(EngineKind::kScalar, [&] {
          return Selectivity(q, ds.table);
        });
        const double sel_v = WithEngine(EngineKind::kVector, [&] {
          return Selectivity(q, ds.table);
        });
        EXPECT_EQ(Bits(sel_s), Bits(sel_v)) << ctx << " selectivity";

        BootstrapOptions bopts;
        bopts.resamples = 20;
        bopts.seed = 1789 + qi;
        auto boot_s = WithEngine(EngineKind::kScalar, [&] {
          return BootstrapEstimate(q, ds.table, population, bopts);
        });
        auto boot_v = WithEngine(EngineKind::kVector, [&] {
          return BootstrapEstimate(q, ds.table, population, bopts);
        });
        ASSERT_TRUE(boot_s.ok() && boot_v.ok()) << ctx;
        ExpectBitIdentical(*boot_s, *boot_v, ctx + " bootstrap");
      }
    }
    util::SetGlobalThreads(0);
  }
}

Table EdgeTable() {
  Schema s;
  EXPECT_TRUE(s.AddAttribute("grp", AttrType::kCategorical).ok());
  EXPECT_TRUE(s.AddAttribute("val", AttrType::kNumeric).ok());
  Table t(s);
  t.AppendRow({Datum::Categorical(0), Datum::Numeric(1.5)});
  t.AppendRow({Datum::Categorical(2), Datum::Numeric(-3.0)});
  t.AppendRow({Datum::Categorical(0), Datum::Numeric(0.0)});
  t.AppendRow({Datum::Categorical(1), Datum::Numeric(7.25)});
  // Declared cardinality above the observed max exercises empty dense slots.
  t.DeclareCardinality(0, 6);
  return t;
}

TEST(EngineTest, EmptySelectionsAndEdgeShapesMatchScalar) {
  EngineGuard guard;
  Table t = EdgeTable();
  std::vector<AggregateQuery> queries;

  for (AggFunc agg :
       {AggFunc::kCount, AggFunc::kSum, AggFunc::kAvg, AggFunc::kQuantile}) {
    for (int group_by : {-1, 0}) {
      // Impossible filter: empty selection (AVG/QUANTILE of empty).
      AggregateQuery empty;
      empty.agg = agg;
      empty.measure_attr = agg == AggFunc::kCount ? -1 : 1;
      empty.group_by_attr = group_by;
      empty.filter.conditions.push_back({1, CmpOp::kGt, 1e9});
      queries.push_back(empty);

      // Empty predicate: everything matches.
      AggregateQuery all = empty;
      all.filter.conditions.clear();
      queries.push_back(all);

      // Disjunctive multi-condition filter.
      AggregateQuery dis = empty;
      dis.filter.conditions = {{1, CmpOp::kLt, 0.0}, {0, CmpOp::kEq, 1.0}};
      dis.filter.conjunctive = false;
      queries.push_back(dis);

      // Conjunctive filter mixing categorical and numeric columns.
      AggregateQuery con = empty;
      con.filter.conditions = {{0, CmpOp::kLe, 1.0}, {1, CmpOp::kGe, 0.0}};
      queries.push_back(con);
    }
  }

  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const AggregateQuery& q = queries[qi];
    const std::string ctx = "edge q" + std::to_string(qi);
    auto exact_s = WithEngine(EngineKind::kScalar,
                              [&] { return ExecuteExact(q, t); });
    auto exact_v = WithEngine(EngineKind::kVector,
                              [&] { return ExecuteExact(q, t); });
    ASSERT_TRUE(exact_s.ok() && exact_v.ok()) << ctx;
    ExpectBitIdentical(*exact_s, *exact_v, ctx + " exact");

    auto est_s = WithEngine(EngineKind::kScalar,
                            [&] { return EstimateFromSample(q, t, 40); });
    auto est_v = WithEngine(EngineKind::kVector,
                            [&] { return EstimateFromSample(q, t, 40); });
    ASSERT_TRUE(est_s.ok() && est_v.ok()) << ctx;
    ExpectBitIdentical(*est_s, *est_v, ctx + " estimate");
  }

  // The explicit semantic anchors: empty COUNT is 0, empty AVG is absent.
  AggregateQuery count_none;
  count_none.filter.conditions.push_back({1, CmpOp::kGt, 1e9});
  EXPECT_EQ(ExecuteExact(count_none, t)->Scalar(), 0.0);
  AggregateQuery avg_none = count_none;
  avg_none.agg = AggFunc::kAvg;
  avg_none.measure_attr = 1;
  EXPECT_TRUE(ExecuteExact(avg_none, t)->groups.empty());
}

TEST(EngineTest, OnlineAggregatorMatchesAcrossEnginesAndBatchSplits) {
  EngineGuard guard;
  auto table = data::GenerateTaxi({.rows = 1500, .seed = 17});
  AggregateQuery q;
  q.agg = AggFunc::kAvg;
  q.measure_attr = table.schema().IndexOf("fare");
  q.group_by_attr = table.schema().IndexOf("pickup_borough");
  q.filter.conditions.push_back(
      {static_cast<size_t>(table.schema().IndexOf("trip_distance")),
       CmpOp::kGt, 1.0});

  auto run = [&](EngineKind kind, const std::vector<size_t>& splits) {
    return WithEngine(kind, [&] {
      OnlineAggregator agg(q, table.num_rows() * 10);
      size_t start = 0;
      for (size_t len : splits) {
        EXPECT_TRUE(agg.AddBatch(table.Gather([&] {
                       std::vector<size_t> rows(len);
                       for (size_t i = 0; i < len; ++i) rows[i] = start + i;
                       return rows;
                     }())).ok());
        start += len;
      }
      auto current = agg.Current();
      EXPECT_TRUE(current.ok());
      return *current;
    });
  };

  const std::vector<size_t> one_batch = {1500};
  const std::vector<size_t> three_batches = {500, 700, 300};
  QueryResult s1 = run(EngineKind::kScalar, one_batch);
  QueryResult v1 = run(EngineKind::kVector, one_batch);
  QueryResult s3 = run(EngineKind::kScalar, three_batches);
  QueryResult v3 = run(EngineKind::kVector, three_batches);
  ExpectBitIdentical(s1, v1, "online one batch");
  ExpectBitIdentical(s3, v3, "online three batches");
  // Batch splits merge per matched row, so the split itself is invisible.
  ExpectBitIdentical(s1, s3, "online scalar split invariance");
  ExpectBitIdentical(v1, v3, "online vector split invariance");
}

}  // namespace
}  // namespace deepaqp::aqp
