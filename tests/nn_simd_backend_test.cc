// The simd GEMM backend's own contract, beyond the exhaustive
// reference-accuracy sweep in nn_gemm_kernel_test.cc (which already covers
// every dispatchable backend):
//  * a shape harness targeted at the simd micro-kernel's boundaries (the
//    4x8 tile, the paired 4x16 AVX2 panels, the kKc=256 K-block seam);
//  * bit-identical output across thread counts (same determinism contract
//    the blocked kernel carries);
//  * fused bias+activation exactly equal to the unfused pipeline under
//    simd (both route through the one scalar epilogue definition);
//  * the vectorized sigmoid fast path within 1e-5 of the std::exp form,
//    with the Bernoulli fusion consuming the RNG stream identically;
//  * dispatch policy: SetGemmKernelKind(kSimd) is a hard
//    FailedPrecondition on hardware without the ISA (simulated via
//    SetCpuFeaturesForTest), never a silent fallback;
//  * an end-to-end drift gate: a seeded VAE sampling run executed under
//    blocked vs simd yields fig2-style COUNT/SUM/AVG estimates within a
//    small relative bound. The backends are NOT bit-identical to each
//    other (different k-accumulation orders), so this pins down the only
//    thing a backend swap is allowed to change: O(eps)-level noise that
//    must not move aggregate estimates by more than kDriftBound.
//
// Every test skips (rather than fails) on hardware where the simd backend
// cannot run, so the suite is green on any machine.

#include "nn/kernels.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "aqp/executor.h"
#include "aqp/query.h"
#include "data/generators.h"
#include "nn/matrix.h"
#include "util/cpu_features.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/thread_pool.h"
#include "vae/vae_model.h"

namespace deepaqp::nn {
namespace {

class ScopedKernel {
 public:
  explicit ScopedKernel(GemmKernelKind kind) : prev_(ActiveGemmKernel()) {
    SetGemmKernel(kind);
  }
  ~ScopedKernel() { SetGemmKernel(prev_); }

 private:
  GemmKernelKind prev_;
};

Matrix RandomMatrix(size_t rows, size_t cols, util::Rng& rng) {
  Matrix m(rows, cols);
  for (size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng.NextGaussian());
  }
  return m;
}

Matrix Abs(const Matrix& m) {
  Matrix out(m.rows(), m.cols());
  for (size_t i = 0; i < m.size(); ++i) out.data()[i] = std::abs(m.data()[i]);
  return out;
}

/// Same forward-error-normalized metric as nn_gemm_kernel_test.cc: max
/// |want - got| / (1 + (|A| @ |B|)_ij), the scale an FMA-contracted or
/// reordered k-sum may legitimately perturb.
double GemmRelError(const Matrix& a, bool ta, const Matrix& b, bool tb,
                    const Matrix& want, const Matrix& got) {
  EXPECT_EQ(want.rows(), got.rows());
  EXPECT_EQ(want.cols(), got.cols());
  Matrix mag;
  ReferenceGemm(Abs(a), ta, Abs(b), tb, 1.0f, 0.0f, &mag);
  double worst = 0.0;
  for (size_t i = 0; i < want.size(); ++i) {
    worst = std::max(worst,
                     std::abs(static_cast<double>(want.data()[i]) -
                              static_cast<double>(got.data()[i])) /
                         (1.0 + mag.data()[i]));
  }
  return worst;
}

bool BitIdentical(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a.data()[i] != b.data()[i]) return false;
  }
  return true;
}

constexpr double kTol = 1e-5;

#define SKIP_WITHOUT_SIMD()                                                  \
  if (!SimdKernelAvailable()) {                                              \
    GTEST_SKIP() << "simd backend unavailable on this machine (cpu: "        \
                 << util::CpuFeaturesToString(util::CpuInfo()) << ")";       \
  }

TEST(SimdBackendTest, MatchesReferenceAtMicroKernelBoundaries) {
  SKIP_WITHOUT_SIMD();
  // Shapes chosen to straddle every seam of the simd driver: m around the
  // 4-row micro-tile and the kMc=32 task block, n around one 8-wide panel,
  // two panels (the paired AVX2 16-column path), and a ragged third, k
  // around the kKc=256 cache block so multi-block beta=1 accumulation runs.
  const size_t kMs[] = {1, 3, 4, 5, 31, 32, 33};
  const size_t kNs[] = {1, 7, 8, 9, 15, 16, 17, 24, 33};
  const size_t kKs[] = {1, 2, 255, 256, 257};
  util::Rng rng(20250807);
  for (size_t m : kMs) {
    for (size_t n : kNs) {
      for (size_t k : kKs) {
        for (bool ta : {false, true}) {
          for (bool tb : {false, true}) {
            const Matrix a =
                ta ? RandomMatrix(k, m, rng) : RandomMatrix(m, k, rng);
            const Matrix b =
                tb ? RandomMatrix(n, k, rng) : RandomMatrix(k, n, rng);
            Matrix want;
            ReferenceGemm(a, ta, b, tb, 1.0f, 0.0f, &want);
            Matrix got;
            ScopedKernel simd(GemmKernelKind::kSimd);
            Gemm(a, ta, b, tb, 1.0f, 0.0f, &got);
            EXPECT_LE(GemmRelError(a, ta, b, tb, want, got), kTol)
                << "m=" << m << " k=" << k << " n=" << n << " ta=" << ta
                << " tb=" << tb;
          }
        }
      }
    }
  }
}

TEST(SimdBackendTest, GemmBitIdenticalAcrossThreadCounts) {
  SKIP_WITHOUT_SIMD();
  ScopedKernel simd(GemmKernelKind::kSimd);
  util::Rng rng(99);
  const Matrix a = RandomMatrix(257, 300, rng);
  const Matrix b = RandomMatrix(300, 65, rng);
  util::SetGlobalThreads(1);
  Matrix base;
  Gemm(a, false, b, false, 1.0f, 0.0f, &base);
  for (int threads : {2, 3, 8}) {
    util::SetGlobalThreads(threads);
    Matrix c;
    Gemm(a, false, b, false, 1.0f, 0.0f, &c);
    EXPECT_TRUE(BitIdentical(base, c)) << "threads=" << threads;
  }
  util::SetGlobalThreads(0);
}

TEST(SimdBackendTest, ShardedGemmTNMatchesReference) {
  SKIP_WITHOUT_SIMD();
  util::Rng rng(123);
  const Matrix a = RandomMatrix(300, 33, rng);  // batch x in
  const Matrix b = RandomMatrix(300, 17, rng);  // batch x out
  Matrix naive_c(33, 17);
  {
    ScopedKernel naive(GemmKernelKind::kNaive);
    ShardedGemmTN(a, b, &naive_c);
  }
  ScopedKernel simd(GemmKernelKind::kSimd);
  util::SetGlobalThreads(1);
  Matrix base(33, 17);
  ShardedGemmTN(a, b, &base);
  EXPECT_LE(GemmRelError(a, true, b, false, naive_c, base), kTol);
  for (int threads : {2, 8}) {
    util::SetGlobalThreads(threads);
    Matrix c(33, 17);
    ShardedGemmTN(a, b, &c);
    EXPECT_TRUE(BitIdentical(base, c)) << "threads=" << threads;
  }
  util::SetGlobalThreads(0);
}

TEST(SimdBackendTest, FusedLinearForwardMatchesUnfusedPipeline) {
  SKIP_WITHOUT_SIMD();
  util::Rng rng(55);
  const Activation kActs[] = {Activation::kIdentity, Activation::kRelu,
                              Activation::kLeakyRelu, Activation::kSigmoid,
                              Activation::kTanh};
  for (size_t batch : {1u, 5u, 33u, 129u}) {
    for (size_t out_dim : {1u, 8u, 17u, 65u}) {
      const Matrix x = RandomMatrix(batch, 24, rng);
      const Matrix w = RandomMatrix(24, out_dim, rng);
      const Matrix bias = RandomMatrix(1, out_dim, rng);
      for (Activation act : kActs) {
        ScopedKernel simd(GemmKernelKind::kSimd);
        Matrix fused;
        FusedLinearForward(x, w, bias, act, 0.2f, &fused);
        Matrix plain;
        Gemm(x, false, w, false, 1.0f, 0.0f, &plain);
        AddRowBroadcast(bias, &plain);
        ApplyActivation(act, 0.2f, plain.data(), plain.size());
        EXPECT_TRUE(BitIdentical(plain, fused))
            << "batch=" << batch << " out=" << out_dim
            << " act=" << static_cast<int>(act);
      }
    }
  }
}

TEST(SimdBackendTest, SigmoidFastPathWithinTolerance) {
  SKIP_WITHOUT_SIMD();
  ScopedKernel simd(GemmKernelKind::kSimd);
  std::vector<float> x;
  for (float v = -30.0f; v <= 30.0f; v += 0.01f) x.push_back(v);
  // Odd length on purpose: exercises the vector body and the scalar tail.
  x.push_back(0.123f);
  std::vector<float> got(x.size());
  SigmoidVec(x.data(), got.data(), x.size());
  for (size_t i = 0; i < x.size(); ++i) {
    const double want = 1.0 / (1.0 + std::exp(-static_cast<double>(x[i])));
    EXPECT_NEAR(got[i], want, 1e-5) << "x=" << x[i];
  }
}

TEST(SimdBackendTest, BernoulliFusionConsumesSameRngStream) {
  SKIP_WITHOUT_SIMD();
  ScopedKernel simd(GemmKernelKind::kSimd);
  util::Rng rng_a(31337);
  util::Rng rng_b(31337);
  std::vector<float> logits;
  util::Rng gen(4);
  for (size_t i = 0; i < 1001; ++i) {
    logits.push_back(static_cast<float>(gen.NextGaussian() * 3.0));
  }
  std::vector<float> fused(logits.size());
  SigmoidBernoulliVec(logits.data(), logits.size(), rng_a, fused.data());
  std::vector<float> probs(logits.size());
  SigmoidVec(logits.data(), probs.data(), logits.size());
  for (size_t i = 0; i < logits.size(); ++i) {
    const float want = rng_b.Bernoulli(probs[i]) ? 1.0f : 0.0f;
    EXPECT_EQ(fused[i], want) << "i=" << i;
  }
  EXPECT_EQ(rng_a.NextUint64(), rng_b.NextUint64());
}

TEST(SimdDispatchTest, ExplicitSelectionFailsOnUnsupportedHardware) {
  // Simulate a CPU with no vector ISA at all. The env-variable path warns
  // and falls back (a library must never abort in a static initializer),
  // but the programmatic/flag path must refuse loudly.
  const GemmKernelKind prev = ActiveGemmKernel();
  SetGemmKernel(GemmKernelKind::kBlocked);
  const util::CpuFeatures none{};
  util::SetCpuFeaturesForTest(&none);
  EXPECT_FALSE(SimdKernelAvailable());
  const util::Status st = SetGemmKernelKind(GemmKernelKind::kSimd);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), util::StatusCode::kFailedPrecondition);
  // A failed switch must not have moved the active kernel.
  EXPECT_EQ(ActiveGemmKernel(), GemmKernelKind::kBlocked);
  util::SetCpuFeaturesForTest(nullptr);
  SetGemmKernel(prev);
}

TEST(SimdDispatchTest, AutoSelectsBestAvailableBackend) {
  const GemmKernelKind prev = ActiveGemmKernel();
  GemmKernelKind parsed;
  ASSERT_TRUE(ParseGemmKernelKind("auto", &parsed).ok());
  ASSERT_TRUE(SetGemmKernelKind(parsed).ok());
  EXPECT_EQ(ActiveGemmKernel(), SimdKernelAvailable()
                                    ? GemmKernelKind::kSimd
                                    : GemmKernelKind::kBlocked);
  SetGemmKernel(prev);
}

// --- End-to-end drift gate -------------------------------------------------

struct Estimates {
  double count = 0.0;
  double sum = 0.0;
  double avg = 0.0;
};

/// Fig. 2-style scalar aggregates over a generated sample: COUNT of a
/// selective filter, SUM and AVG of numeric measures under it.
Estimates RunAggregates(const relation::Table& sample) {
  // Census attribute 8 = age (numeric), 13 = hours_per_week (numeric).
  aqp::Predicate working_age;
  working_age.conditions.push_back(
      {/*attr=*/8, aqp::CmpOp::kGe, /*value=*/25.0});
  working_age.conditions.push_back(
      {/*attr=*/8, aqp::CmpOp::kLe, /*value=*/55.0});

  Estimates out;
  aqp::AggregateQuery q;
  q.filter = working_age;

  q.agg = aqp::AggFunc::kCount;
  auto count = aqp::ExecuteExact(q, sample);
  EXPECT_TRUE(count.ok());
  out.count = (*count).Scalar();

  q.agg = aqp::AggFunc::kSum;
  q.measure_attr = 13;
  auto sum = aqp::ExecuteExact(q, sample);
  EXPECT_TRUE(sum.ok());
  out.sum = (*sum).Scalar();

  q.agg = aqp::AggFunc::kAvg;
  q.measure_attr = 8;
  auto avg = aqp::ExecuteExact(q, sample);
  EXPECT_TRUE(avg.ok());
  out.avg = (*avg).Scalar();
  return out;
}

double RelDiff(double a, double b) {
  return std::abs(a - b) / std::max(1.0, std::max(std::abs(a), std::abs(b)));
}

TEST(SimdBackendTest, EndToEndSamplingEstimatesDriftWithinBound) {
  SKIP_WITHOUT_SIMD();
  // One seeded model, one seeded RNG per run; the ONLY variable is the GEMM
  // backend under the decoder. The backends differ by O(eps) per logit, so
  // categorical decode decisions and Bernoulli draws near a threshold can
  // flip for a handful of tuples — aggregate estimates must not move more
  // than this bound. (Measured drift is ~1e-3; the bound leaves headroom
  // but still catches any real kernel bug, which shows up as O(1) drift.)
  constexpr double kDriftBound = 0.05;

  const relation::Table table =
      data::GenerateCensus({.rows = 3000, .seed = 71});
  vae::VaeAqpOptions options;
  options.epochs = 3;
  options.hidden_dim = 32;
  options.seed = 20250807;
  auto model = vae::VaeAqpModel::Train(table, options);
  ASSERT_TRUE(model.ok()) << model.status().ToString();

  const size_t n = 4000;
  Estimates blocked_est;
  {
    ScopedKernel blocked(GemmKernelKind::kBlocked);
    util::Rng rng(4242);
    blocked_est = RunAggregates((*model)->Generate(n, vae::kTPlusInf, rng));
  }
  Estimates simd_est;
  {
    ScopedKernel simd(GemmKernelKind::kSimd);
    util::Rng rng(4242);
    simd_est = RunAggregates((*model)->Generate(n, vae::kTPlusInf, rng));
  }

  EXPECT_LE(RelDiff(blocked_est.count, simd_est.count), kDriftBound)
      << "COUNT: blocked=" << blocked_est.count
      << " simd=" << simd_est.count;
  EXPECT_LE(RelDiff(blocked_est.sum, simd_est.sum), kDriftBound)
      << "SUM: blocked=" << blocked_est.sum << " simd=" << simd_est.sum;
  EXPECT_LE(RelDiff(blocked_est.avg, simd_est.avg), kDriftBound)
      << "AVG: blocked=" << blocked_est.avg << " simd=" << simd_est.avg;
  // Sanity: the sample itself is meaningful (a broken filter or an empty
  // sample would make the drift test vacuous).
  EXPECT_GT(blocked_est.count, 0.0);
  EXPECT_GT(simd_est.count, 0.0);
}

}  // namespace
}  // namespace deepaqp::nn
