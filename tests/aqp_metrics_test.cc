#include "aqp/metrics.h"

#include <gtest/gtest.h>

namespace deepaqp::aqp {
namespace {

TEST(MetricsTest, RelativeErrorBasics) {
  EXPECT_DOUBLE_EQ(RelativeError(110.0, 100.0), 0.1);
  EXPECT_DOUBLE_EQ(RelativeError(90.0, 100.0), 0.1);
  EXPECT_DOUBLE_EQ(RelativeError(-90.0, -100.0), 0.1);
  EXPECT_DOUBLE_EQ(RelativeError(100.0, 100.0), 0.0);
}

TEST(MetricsTest, ZeroTruthConvention) {
  EXPECT_DOUBLE_EQ(RelativeError(0.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(RelativeError(5.0, 0.0), 1.0);
}

TEST(MetricsTest, AverageRelativeError) {
  EXPECT_DOUBLE_EQ(AverageRelativeError({0.1, 0.3}), 0.2);
  EXPECT_DOUBLE_EQ(AverageRelativeError({}), 0.0);
}

QueryResult MakeResult(std::vector<std::pair<int32_t, double>> pairs) {
  QueryResult r;
  for (auto [g, v] : pairs) r.groups.push_back(GroupValue{g, v, 1, 0.0});
  return r;
}

TEST(MetricsTest, GroupByErrorAveragesOverTruthGroups) {
  auto truth = MakeResult({{0, 100.0}, {1, 200.0}});
  auto est = MakeResult({{0, 110.0}, {1, 180.0}});
  EXPECT_DOUBLE_EQ(ResultRelativeError(est, truth), (0.1 + 0.1) / 2.0);
}

TEST(MetricsTest, MissingGroupCountsAsFullError) {
  // Paper Eq. 3: missing groups are assigned 100% relative error.
  auto truth = MakeResult({{0, 100.0}, {1, 200.0}});
  auto est = MakeResult({{0, 100.0}});
  EXPECT_DOUBLE_EQ(ResultRelativeError(est, truth), 0.5);
}

TEST(MetricsTest, SpuriousExtraGroupsAreIgnored) {
  auto truth = MakeResult({{0, 100.0}});
  auto est = MakeResult({{0, 100.0}, {7, 5.0}});
  EXPECT_DOUBLE_EQ(ResultRelativeError(est, truth), 0.0);
}

TEST(MetricsTest, EmptyTruth) {
  auto empty = MakeResult({});
  EXPECT_DOUBLE_EQ(ResultRelativeError(empty, empty), 0.0);
  auto est = MakeResult({{0, 1.0}});
  EXPECT_DOUBLE_EQ(ResultRelativeError(est, empty), 1.0);
}

TEST(MetricsTest, ScalarResultsDegradeToEq1) {
  auto truth = MakeResult({{-1, 50.0}});
  auto est = MakeResult({{-1, 60.0}});
  EXPECT_DOUBLE_EQ(ResultRelativeError(est, truth), 0.2);
}

TEST(DistributionSummaryTest, OrderStatistics) {
  std::vector<double> v;
  for (int i = 1; i <= 100; ++i) v.push_back(i);
  auto s = DistributionSummary::FromValues(v);
  EXPECT_NEAR(s.mean, 50.5, 1e-9);
  EXPECT_NEAR(s.median, 50.5, 1e-9);
  EXPECT_NEAR(s.p5, 5.95, 1e-9);
  EXPECT_NEAR(s.p95, 95.05, 1e-9);
  EXPECT_LT(s.p25, s.median);
  EXPECT_LT(s.median, s.p75);
}

TEST(DistributionSummaryTest, SingleValueAndEmpty) {
  auto one = DistributionSummary::FromValues({3.0});
  EXPECT_DOUBLE_EQ(one.median, 3.0);
  EXPECT_DOUBLE_EQ(one.p5, 3.0);
  EXPECT_DOUBLE_EQ(one.p95, 3.0);
  auto none = DistributionSummary::FromValues({});
  EXPECT_DOUBLE_EQ(none.mean, 0.0);
}

}  // namespace
}  // namespace deepaqp::aqp
