#include "nn/matrix.h"

#include <gtest/gtest.h>

namespace deepaqp::nn {
namespace {

Matrix Make(size_t r, size_t c, std::vector<float> vals) {
  Matrix m(r, c);
  for (size_t i = 0; i < vals.size(); ++i) m.data()[i] = vals[i];
  return m;
}

TEST(MatrixTest, BasicAccess) {
  Matrix m(2, 3, 1.5f);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.At(1, 2), 1.5f);
  m.At(0, 1) = 7.0f;
  EXPECT_EQ(m.Row(0)[1], 7.0f);
  m.Zero();
  EXPECT_EQ(m.At(0, 1), 0.0f);
}

TEST(MatrixTest, GemmNoTranspose) {
  // [1 2; 3 4] @ [5 6; 7 8] = [19 22; 43 50]
  Matrix a = Make(2, 2, {1, 2, 3, 4});
  Matrix b = Make(2, 2, {5, 6, 7, 8});
  Matrix c;
  Gemm(a, false, b, false, 1.0f, 0.0f, &c);
  EXPECT_EQ(c.At(0, 0), 19.0f);
  EXPECT_EQ(c.At(0, 1), 22.0f);
  EXPECT_EQ(c.At(1, 0), 43.0f);
  EXPECT_EQ(c.At(1, 1), 50.0f);
}

TEST(MatrixTest, GemmTransposeA) {
  // A^T @ B with A 2x3: result 3x2.
  Matrix a = Make(2, 3, {1, 2, 3, 4, 5, 6});
  Matrix b = Make(2, 2, {1, 0, 0, 1});
  Matrix c;
  Gemm(a, true, b, false, 1.0f, 0.0f, &c);
  ASSERT_EQ(c.rows(), 3u);
  ASSERT_EQ(c.cols(), 2u);
  EXPECT_EQ(c.At(0, 0), 1.0f);
  EXPECT_EQ(c.At(0, 1), 4.0f);
  EXPECT_EQ(c.At(2, 1), 6.0f);
}

TEST(MatrixTest, GemmTransposeB) {
  Matrix a = Make(1, 3, {1, 2, 3});
  Matrix b = Make(2, 3, {1, 1, 1, 2, 2, 2});  // b^T is 3x2
  Matrix c;
  Gemm(a, false, b, true, 1.0f, 0.0f, &c);
  ASSERT_EQ(c.rows(), 1u);
  ASSERT_EQ(c.cols(), 2u);
  EXPECT_EQ(c.At(0, 0), 6.0f);
  EXPECT_EQ(c.At(0, 1), 12.0f);
}

TEST(MatrixTest, GemmBothTransposed) {
  Matrix a = Make(2, 3, {1, 2, 3, 4, 5, 6});  // a^T is 3x2
  Matrix b = Make(4, 2, {1, 0, 0, 1, 1, 1, 2, 2});  // b^T is 2x4
  Matrix c;
  Gemm(a, true, b, true, 1.0f, 0.0f, &c);
  ASSERT_EQ(c.rows(), 3u);
  ASSERT_EQ(c.cols(), 4u);
  // c[i][j] = sum_k a[k][i] * b[j][k]
  EXPECT_EQ(c.At(0, 0), 1.0f * 1 + 4.0f * 0);
  EXPECT_EQ(c.At(1, 3), 2.0f * 2 + 5.0f * 2);
}

TEST(MatrixTest, GemmAlphaBetaAccumulate) {
  Matrix a = Make(1, 1, {2});
  Matrix b = Make(1, 1, {3});
  Matrix c = Make(1, 1, {10});
  Gemm(a, false, b, false, 2.0f, 1.0f, &c);  // c = 2*6 + 10
  EXPECT_EQ(c.At(0, 0), 22.0f);
  Gemm(a, false, b, false, 1.0f, 0.5f, &c);  // c = 6 + 11
  EXPECT_EQ(c.At(0, 0), 17.0f);
}

TEST(MatrixTest, GemmMatchesNaiveOnRandom) {
  util::Rng rng(3);
  Matrix a(7, 5), b(5, 9);
  a.RandomizeGaussian(rng, 1.0f);
  b.RandomizeGaussian(rng, 1.0f);
  Matrix c;
  Gemm(a, false, b, false, 1.0f, 0.0f, &c);
  for (size_t i = 0; i < 7; ++i) {
    for (size_t j = 0; j < 9; ++j) {
      float acc = 0;
      for (size_t k = 0; k < 5; ++k) acc += a.At(i, k) * b.At(k, j);
      EXPECT_NEAR(c.At(i, j), acc, 1e-4);
    }
  }
}

TEST(MatrixTest, AddRowBroadcastAndColumnSums) {
  Matrix m = Make(2, 3, {1, 2, 3, 4, 5, 6});
  Matrix bias = Make(1, 3, {10, 20, 30});
  AddRowBroadcast(bias, &m);
  EXPECT_EQ(m.At(0, 0), 11.0f);
  EXPECT_EQ(m.At(1, 2), 36.0f);
  Matrix sums = ColumnSums(m);
  EXPECT_EQ(sums.At(0, 0), 25.0f);
  EXPECT_EQ(sums.At(0, 2), 69.0f);
}

TEST(MatrixTest, AxpyAndSumSquares) {
  Matrix a = Make(1, 2, {1, 2});
  Matrix b = Make(1, 2, {10, 20});
  Axpy(0.5f, b, &a);
  EXPECT_EQ(a.At(0, 0), 6.0f);
  EXPECT_EQ(a.At(0, 1), 12.0f);
  EXPECT_DOUBLE_EQ(SumSquares(a), 36.0 + 144.0);
}

TEST(MatrixTest, GatherRows) {
  Matrix m = Make(3, 2, {1, 2, 3, 4, 5, 6});
  Matrix g = m.GatherRows({2, 0, 2});
  ASSERT_EQ(g.rows(), 3u);
  EXPECT_EQ(g.At(0, 0), 5.0f);
  EXPECT_EQ(g.At(1, 1), 2.0f);
  EXPECT_EQ(g.At(2, 1), 6.0f);
}

TEST(MatrixTest, SerializeRoundTrip) {
  util::Rng rng(5);
  Matrix m(4, 6);
  m.RandomizeGaussian(rng, 2.0f);
  util::ByteWriter w;
  m.Serialize(w);
  util::ByteReader r(w.bytes());
  auto back = Matrix::Deserialize(r);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->rows(), 4u);
  ASSERT_EQ(back->cols(), 6u);
  for (size_t i = 0; i < m.size(); ++i) {
    EXPECT_EQ(back->data()[i], m.data()[i]);
  }
}

TEST(MatrixTest, DeserializeRejectsCorruptPayload) {
  util::ByteWriter w;
  w.WriteU64(2);
  w.WriteU64(2);
  w.WriteF32Vector({1.0f});  // wrong length
  util::ByteReader r(w.bytes());
  EXPECT_FALSE(Matrix::Deserialize(r).ok());
}

}  // namespace
}  // namespace deepaqp::nn
