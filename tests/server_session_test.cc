// End-to-end server determinism: N concurrent sessions driven over the
// in-process pipe transport must produce estimate streams byte-identical to
// a direct vae::AqpClient refining the same query sequence — at every
// thread-pool width — while the per-session suffix-incremental cache keeps
// doing suffix-only work. Also locks down hot-swap cache invalidation and
// the error-is-a-response (never-kills-the-session) contract.

#include <atomic>
#include <chrono>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "aqp/engine.h"
#include "aqp/sql_parser.h"
#include "data/generators.h"
#include "server/scheduler.h"
#include "server/server.h"
#include "server/transport.h"
#include "util/thread_pool.h"
#include "vae/client.h"
#include "vae/vae_model.h"

namespace deepaqp::server {
namespace {

struct EngineGuard {
  aqp::EngineKind saved = aqp::ActiveEngine();
  EngineGuard() { aqp::SetEngine(aqp::EngineKind::kVector); }
  ~EngineGuard() { aqp::SetEngine(saved); }
};

/// Trains one small taxi model per distinct training seed, once for the
/// whole suite, and serves it as bytes (every consumer re-opens or shares
/// the identical generator).
const std::vector<uint8_t>& ModelBytes(uint64_t train_seed = 77) {
  static std::map<uint64_t, std::vector<uint8_t>>* cache =
      new std::map<uint64_t, std::vector<uint8_t>>();
  auto it = cache->find(train_seed);
  if (it == cache->end()) {
    auto table = data::GenerateTaxi({.rows = 4000, .seed = 21});
    vae::VaeAqpOptions opts;
    opts.epochs = 8;
    opts.hidden_dim = 48;
    opts.seed = train_seed;
    opts.encoder.numeric_bins = 16;
    auto model = vae::VaeAqpModel::Train(table, opts);
    EXPECT_TRUE(model.ok());
    it = cache->emplace(train_seed, (*model)->Serialize()).first;
  }
  return it->second;
}

vae::AqpClient::Options ClientOptions() {
  vae::AqpClient::Options copts;
  copts.initial_samples = 400;
  copts.max_samples = 6400;
  copts.population_rows = 4000;
  copts.seed = 2027;
  return copts;
}

AqpServer::Options ServerOptions() {
  AqpServer::Options opts;
  opts.client = ClientOptions();
  return opts;
}

struct QuerySpec {
  std::string sql;
  double max_relative_ci = 0.0;
};

std::vector<QuerySpec> DefaultQueries() {
  return {
      {"SELECT AVG(fare) FROM R WHERE trip_distance > 1", 0.03},
      {"SELECT COUNT(*) FROM R WHERE passengers >= 2", 0.05},
  };
}

/// What a direct AqpClient produces for the same query sequence: the exact
/// frame payloads a faithful server session must emit.
std::vector<std::vector<uint8_t>> ReferenceStream(
    const std::vector<uint8_t>& model_bytes,
    const std::vector<QuerySpec>& queries) {
  auto client = vae::AqpClient::Open(model_bytes, ClientOptions());
  EXPECT_TRUE(client.ok());
  std::vector<std::vector<uint8_t>> out;
  for (const QuerySpec& spec : queries) {
    auto query = aqp::ParseSql(spec.sql, (*client)->pool());
    EXPECT_TRUE(query.ok()) << query.status().message();
    bool final = false;
    while (!final) {
      auto result =
          (*client)->QueryRefineStep(*query, spec.max_relative_ci, &final);
      EXPECT_TRUE(result.ok()) << result.status().message();
      Estimate estimate;
      estimate.pool_rows = (*client)->pool_size();
      estimate.result = std::move(*result);
      out.push_back(EncodeEstimate(estimate));
    }
  }
  return out;
}

uint64_t OpenSession(AqpServer& server, const std::shared_ptr<PipeTransport>& pipe,
                     const std::string& model = "taxi") {
  ClientMessage open;
  open.kind = ClientMessageKind::kOpenSession;
  open.model_name = model;
  server.Handle(open, pipe);
  ServerMessage reply = pipe->Pop();
  EXPECT_EQ(reply.kind, ServerMessageKind::kSessionOpened);
  return reply.session;
}

struct StreamOutcome {
  std::vector<std::vector<uint8_t>> payloads;
  util::Status error;  // OK unless the stream failed
};

/// Drives one query to completion over the pipe: submits it, acks every
/// DATA frame, reassembles the in-order payload stream.
StreamOutcome RunQuery(AqpServer& server, const std::shared_ptr<PipeTransport>& pipe,
                       uint64_t session, const QuerySpec& spec) {
  StreamOutcome outcome;
  ClientMessage query;
  query.kind = ClientMessageKind::kQuery;
  query.session = session;
  query.sql = spec.sql;
  query.max_relative_ci = spec.max_relative_ci;
  server.Handle(query, pipe);

  // Late retransmissions of already-completed channels may trail in the
  // pipe (the consumer-side dedup makes them harmless); skip them while
  // waiting for this query's start notification.
  ServerMessage first;
  for (;;) {
    first = pipe->Pop();
    if (first.kind != ServerMessageKind::kData) break;
  }
  if (first.kind == ServerMessageKind::kError) {
    outcome.error = util::Status::Internal(first.message);
    return outcome;
  }
  EXPECT_EQ(first.kind, ServerMessageKind::kQueryStarted);
  ChannelConsumer consumer(first.channel);
  while (!consumer.finished()) {
    ServerMessage msg = pipe->Pop();
    if (msg.kind == ServerMessageKind::kData &&
        msg.channel != first.channel) {
      continue;  // stale frame of a finished stream
    }
    if (msg.kind == ServerMessageKind::kError) {
      outcome.error = util::Status::Internal(msg.message);
      return outcome;
    }
    EXPECT_EQ(msg.kind, ServerMessageKind::kData) << msg.message;
    if (msg.kind != ServerMessageKind::kData) {
      outcome.error = util::Status::Internal("unexpected message kind");
      return outcome;
    }
    consumer.OnData(msg.data);
    for (auto& p : consumer.TakeDelivered()) {
      outcome.payloads.push_back(std::move(p));
    }
    ClientMessage ack;
    ack.kind = ClientMessageKind::kAck;
    ack.session = session;
    ack.ack = consumer.MakeAck();
    server.Handle(ack, pipe);
  }
  return outcome;
}

void DriveSession(AqpServer& server, const std::shared_ptr<PipeTransport>& pipe,
                  uint64_t session, const std::vector<QuerySpec>& queries,
                  std::vector<std::vector<uint8_t>>* stream) {
  for (const QuerySpec& spec : queries) {
    StreamOutcome outcome = RunQuery(server, pipe, session, spec);
    ASSERT_TRUE(outcome.error.ok()) << outcome.error.message();
    for (auto& p : outcome.payloads) stream->push_back(std::move(p));
  }
}

TEST(ServerSessionTest, StreamMatchesDirectClientBitForBit) {
  EngineGuard guard;
  const std::vector<QuerySpec> queries = DefaultQueries();
  const std::vector<std::vector<uint8_t>> reference =
      ReferenceStream(ModelBytes(), queries);
  ASSERT_GT(reference.size(), queries.size());  // streams actually refined

  AqpServer server(ServerOptions());
  auto model = vae::VaeAqpModel::Deserialize(ModelBytes());
  ASSERT_TRUE(model.ok());
  server.registry().Install("taxi", std::move(*model));

  auto pipe = std::make_shared<PipeTransport>();
  uint64_t session = OpenSession(server, pipe);
  std::vector<std::vector<uint8_t>> stream;
  DriveSession(server, pipe, session, queries, &stream);
  EXPECT_EQ(stream, reference);

  // Suffix-only evaluation happened inside the session: across the whole
  // precision-on-demand trajectory of the first query, every pool row was
  // filtered exactly once (a cache-less client would rescan each prefix).
  auto stats = server.SessionCacheStats(session);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->filter_entries, 2u);  // one bitmap per distinct filter
  EXPECT_EQ(stats->invalidations, 0u);

  ClientMessage close;
  close.kind = ClientMessageKind::kCloseSession;
  close.session = session;
  server.Handle(close, pipe);
  ServerMessage closed;
  do {
    closed = pipe->Pop();
  } while (closed.kind == ServerMessageKind::kData);  // late retransmits
  EXPECT_EQ(closed.kind, ServerMessageKind::kSessionClosed);
  EXPECT_EQ(server.num_sessions(), 0u);
}

TEST(ServerSessionTest, ConcurrentSessionsBitIdenticalAcrossThreadCounts) {
  EngineGuard guard;
  const std::vector<QuerySpec> queries = DefaultQueries();
  const std::vector<std::vector<uint8_t>> reference =
      ReferenceStream(ModelBytes(), queries);

  constexpr int kSessions = 3;
  for (int threads : {1, 4, 8}) {
    util::SetGlobalThreads(threads);
    AqpServer server(ServerOptions());
    auto model = vae::VaeAqpModel::Deserialize(ModelBytes());
    ASSERT_TRUE(model.ok());
    server.registry().Install("taxi", std::move(*model));

    std::vector<std::shared_ptr<PipeTransport>> pipes;
    std::vector<uint64_t> ids;
    for (int s = 0; s < kSessions; ++s) {
      pipes.push_back(std::make_shared<PipeTransport>());
      ids.push_back(OpenSession(server, pipes.back()));
    }
    std::vector<std::vector<std::vector<uint8_t>>> streams(kSessions);
    {
      std::vector<std::thread> drivers;
      for (int s = 0; s < kSessions; ++s) {
        drivers.emplace_back([&, s] {
          DriveSession(server, pipes[s], ids[s], queries, &streams[s]);
        });
      }
      for (std::thread& t : drivers) t.join();
    }
    for (int s = 0; s < kSessions; ++s) {
      EXPECT_EQ(streams[s], reference)
          << "session " << s << " at --threads " << threads;
    }
  }
  util::SetGlobalThreads(0);  // restore hardware default
}

TEST(ServerSessionTest, PipelinedQueriesDrainOnAcksAlone) {
  EngineGuard guard;
  const std::vector<QuerySpec> queries = DefaultQueries();
  const std::vector<std::vector<uint8_t>> reference =
      ReferenceStream(ModelBytes(), queries);

  AqpServer server(ServerOptions());
  auto model = vae::VaeAqpModel::Deserialize(ModelBytes());
  ASSERT_TRUE(model.ok());
  server.registry().Install("taxi", std::move(*model));
  auto pipe = std::make_shared<PipeTransport>();
  uint64_t session = OpenSession(server, pipe);

  // Submit every query up front. The second stream starts refining the
  // moment the first fully retires — the only client events after this
  // point are acks for received frames, so a session step that retires a
  // stream without pumping its successor would stall the pipeline forever.
  for (const QuerySpec& spec : queries) {
    ClientMessage query;
    query.kind = ClientMessageKind::kQuery;
    query.session = session;
    query.sql = spec.sql;
    query.max_relative_ci = spec.max_relative_ci;
    server.Handle(query, pipe);
  }

  std::map<uint64_t, ChannelConsumer> consumers;
  std::vector<std::vector<uint8_t>> stream;
  size_t finished = 0;
  while (finished < queries.size()) {
    ServerMessage msg = pipe->Pop();
    if (msg.kind == ServerMessageKind::kQueryStarted) {
      consumers.emplace(msg.channel, ChannelConsumer(msg.channel));
      continue;
    }
    ASSERT_EQ(msg.kind, ServerMessageKind::kData) << msg.message;
    auto it = consumers.find(msg.channel);
    ASSERT_NE(it, consumers.end());
    if (it->second.finished()) continue;  // late retransmit
    it->second.OnData(msg.data);
    for (auto& p : it->second.TakeDelivered()) stream.push_back(std::move(p));
    if (it->second.finished()) ++finished;
    ClientMessage ack;
    ack.kind = ClientMessageKind::kAck;
    ack.session = session;
    ack.ack = it->second.MakeAck();
    server.Handle(ack, pipe);
  }
  // Per-session serialization means the concatenated streams match a direct
  // client running the queries back to back.
  EXPECT_EQ(stream, reference);
}

TEST(ServerSessionTest, MidStreamSwapIsDeferredToStreamBoundary) {
  EngineGuard guard;
  ModelRegistry registry;
  auto v1 = vae::VaeAqpModel::Deserialize(ModelBytes(77));
  ASSERT_TRUE(v1.ok());
  registry.Install("taxi", std::move(*v1));
  auto snap = registry.Get("taxi");
  ASSERT_TRUE(snap.ok());
  Session session(1, "taxi", *snap, ClientOptions(),
                  ChannelProducer::Options{});
  const QuerySpec spec = DefaultQueries()[0];
  ASSERT_TRUE(session.StartQuery(7, spec.sql, spec.max_relative_ci).ok());

  std::vector<ServerMessage> errors;
  std::vector<DataFrame> frames = session.Step(registry, &errors);
  ASSERT_TRUE(errors.empty());
  ASSERT_FALSE(frames.empty());

  // Hot swap while the stream has frames in flight: the session must keep
  // serving the old generator until the stream retires, so the stream stays
  // bit-identical to a fresh v1 client and pool_rows stays monotonic.
  ASSERT_TRUE(registry.Register("taxi", ModelBytes(78)).ok());

  ChannelConsumer consumer(7);
  std::vector<std::vector<uint8_t>> payloads;
  int rounds = 0;
  while (!consumer.finished() && rounds++ < 1000) {
    for (const DataFrame& f : frames) consumer.OnData(f);
    for (auto& p : consumer.TakeDelivered()) payloads.push_back(std::move(p));
    if (!consumer.finished()) {
      EXPECT_EQ(session.model_swaps(), 0u);  // deferred while mid-stream
    }
    session.HandleAck(consumer.MakeAck());
    frames = session.Step(registry, &errors);
    ASSERT_TRUE(errors.empty());
  }
  ASSERT_TRUE(consumer.finished());
  EXPECT_EQ(session.open_streams(), 0u);
  EXPECT_EQ(payloads, ReferenceStream(ModelBytes(77), {spec}));
  uint64_t prev_rows = 0;
  for (const auto& p : payloads) {
    auto est = DecodeEstimate(p);
    ASSERT_TRUE(est.ok());
    EXPECT_GE(est->pool_rows, prev_rows);
    prev_rows = est->pool_rows;
  }
  // With the stream retired, the next step is a boundary: the deferred swap
  // lands and resets the client.
  session.Step(registry, &errors);
  EXPECT_TRUE(errors.empty());
  EXPECT_EQ(session.model_swaps(), 1u);
  EXPECT_EQ(session.model_version(), 2u);
}

TEST(ServerSessionTest, HotSwapResetsSessionCacheAndMatchesFreshClient) {
  EngineGuard guard;
  const QuerySpec spec = DefaultQueries()[0];
  AqpServer server(ServerOptions());
  auto v1 = vae::VaeAqpModel::Deserialize(ModelBytes(77));
  ASSERT_TRUE(v1.ok());
  server.registry().Install("taxi", std::move(*v1));

  auto pipe = std::make_shared<PipeTransport>();
  uint64_t session = OpenSession(server, pipe);
  StreamOutcome before = RunQuery(server, pipe, session, spec);
  ASSERT_TRUE(before.error.ok()) << before.error.message();

  // Hot swap: a differently-seeded training run of the same schema. The
  // bytes genuinely differ, so any stale pool row or cached bitmap would
  // show up as a stream mismatch below.
  ASSERT_NE(ModelBytes(78), ModelBytes(77));
  auto version = server.registry().Register("taxi", ModelBytes(78));
  ASSERT_TRUE(version.ok());
  EXPECT_EQ(*version, 2u);

  StreamOutcome after = RunQuery(server, pipe, session, spec);
  ASSERT_TRUE(after.error.ok()) << after.error.message();
  server.WaitIdle();

  auto swaps = server.SessionModelSwaps(session);
  ASSERT_TRUE(swaps.ok());
  EXPECT_EQ(*swaps, 1u);
  auto stats = server.SessionCacheStats(session);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->invalidations, 1u);

  // The post-swap stream is exactly what a fresh client on the new model
  // produces — pool, rng and caches were all reset.
  const std::vector<std::vector<uint8_t>> fresh =
      ReferenceStream(ModelBytes(78), {spec});
  EXPECT_EQ(after.payloads, fresh);
  EXPECT_NE(before.payloads, after.payloads);
}

TEST(ServerSessionTest, ErrorsAreResponsesNotSessionDeath) {
  EngineGuard guard;
  AqpServer server(ServerOptions());
  auto model = vae::VaeAqpModel::Deserialize(ModelBytes());
  ASSERT_TRUE(model.ok());
  server.registry().Install("taxi", std::move(*model));
  auto pipe = std::make_shared<PipeTransport>();

  // Unknown model: the open fails, nothing leaks.
  ClientMessage bad_open;
  bad_open.kind = ClientMessageKind::kOpenSession;
  bad_open.model_name = "nope";
  server.Handle(bad_open, pipe);
  ServerMessage err = pipe->Pop();
  EXPECT_EQ(err.kind, ServerMessageKind::kError);
  EXPECT_EQ(server.num_sessions(), 0u);

  uint64_t session = OpenSession(server, pipe);

  // Malformed SQL: an error response on the query's channel; the session
  // lives on.
  StreamOutcome bad =
      RunQuery(server, pipe, session, {"SELECT FROM WHERE", 0.05});
  EXPECT_FALSE(bad.error.ok());

  // Nonsensical precision target: rejected up front.
  StreamOutcome bad_ci =
      RunQuery(server, pipe, session, {DefaultQueries()[0].sql, -1.0});
  EXPECT_FALSE(bad_ci.error.ok());

  // Unknown session id: an error response, not a crash.
  ClientMessage stray;
  stray.kind = ClientMessageKind::kQuery;
  stray.session = 999;
  stray.sql = DefaultQueries()[0].sql;
  stray.max_relative_ci = 0.05;
  server.Handle(stray, pipe);
  EXPECT_EQ(pipe->Pop().kind, ServerMessageKind::kError);

  // The same session still answers real queries, identically to a direct
  // client (the failed requests consumed no pool growth).
  StreamOutcome good = RunQuery(server, pipe, session, DefaultQueries()[0]);
  ASSERT_TRUE(good.error.ok()) << good.error.message();
  EXPECT_EQ(good.payloads, ReferenceStream(ModelBytes(), {DefaultQueries()[0]}));
  EXPECT_EQ(server.num_sessions(), 1u);
}

TEST(ServerSessionTest, PerSessionOverridesApply) {
  EngineGuard guard;
  AqpServer server(ServerOptions());
  auto model = vae::VaeAqpModel::Deserialize(ModelBytes());
  ASSERT_TRUE(model.ok());
  server.registry().Install("taxi", std::move(*model));
  auto pipe = std::make_shared<PipeTransport>();

  ClientMessage open;
  open.kind = ClientMessageKind::kOpenSession;
  open.model_name = "taxi";
  open.initial_samples = 800;
  open.seed = 4242;
  server.Handle(open, pipe);
  ServerMessage reply = pipe->Pop();
  ASSERT_EQ(reply.kind, ServerMessageKind::kSessionOpened);
  server.WaitIdle();

  // A direct client with the same overrides produces the same stream.
  vae::AqpClient::Options copts = ClientOptions();
  copts.initial_samples = 800;
  copts.seed = 4242;
  auto direct = vae::AqpClient::Open(ModelBytes(), copts);
  ASSERT_TRUE(direct.ok());
  const QuerySpec spec = DefaultQueries()[0];
  auto query = aqp::ParseSql(spec.sql, (*direct)->pool());
  ASSERT_TRUE(query.ok());
  std::vector<std::vector<uint8_t>> expect;
  bool final = false;
  while (!final) {
    auto result =
        (*direct)->QueryRefineStep(*query, spec.max_relative_ci, &final);
    ASSERT_TRUE(result.ok());
    Estimate estimate;
    estimate.pool_rows = (*direct)->pool_size();
    estimate.result = std::move(*result);
    expect.push_back(EncodeEstimate(estimate));
  }
  StreamOutcome got = RunQuery(server, pipe, reply.session, spec);
  ASSERT_TRUE(got.error.ok()) << got.error.message();
  EXPECT_EQ(got.payloads, expect);
}

/// Splits the whole-session reference stream into one payload vector per
/// query (queries refine sequentially in a session, so query i's frames are
/// a contiguous segment).
std::vector<std::vector<std::vector<uint8_t>>> ReferenceSegments(
    const std::vector<QuerySpec>& queries) {
  std::vector<std::vector<std::vector<uint8_t>>> segments;
  std::vector<QuerySpec> prefix;
  size_t consumed = 0;
  for (const QuerySpec& spec : queries) {
    prefix.push_back(spec);
    std::vector<std::vector<uint8_t>> whole =
        ReferenceStream(ModelBytes(), prefix);
    segments.emplace_back(whole.begin() + consumed, whole.end());
    consumed = whole.size();
  }
  return segments;
}

TEST(ServerSessionTest, GracefulShutdownNeverTruncatesAcrossThreadCounts) {
  EngineGuard guard;
  const std::vector<QuerySpec> queries = DefaultQueries();
  const std::vector<std::vector<std::vector<uint8_t>>> segments =
      ReferenceSegments(queries);

  constexpr int kSessions = 3;
  for (int threads : {1, 4, 8}) {
    util::SetGlobalThreads(threads);
    AqpServer server(ServerOptions());
    auto model = vae::VaeAqpModel::Deserialize(ModelBytes());
    ASSERT_TRUE(model.ok());
    server.registry().Install("taxi", std::move(*model));

    std::vector<std::shared_ptr<PipeTransport>> pipes;
    std::vector<uint64_t> ids;
    for (int s = 0; s < kSessions; ++s) {
      pipes.push_back(std::make_shared<PipeTransport>());
      ids.push_back(OpenSession(server, pipes.back()));
    }

    // Each driver runs the query sequence tolerantly, recording per-query
    // outcomes. Shutdown begins while the first queries are mid-stream.
    std::vector<std::vector<StreamOutcome>> outcomes(kSessions);
    std::vector<std::thread> drivers;
    for (int s = 0; s < kSessions; ++s) {
      drivers.emplace_back([&, s] {
        for (const QuerySpec& spec : queries) {
          outcomes[s].push_back(RunQuery(server, pipes[s], ids[s], spec));
          if (!outcomes[s].back().error.ok()) break;
        }
      });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    server.BeginShutdown();
    // Acks keep flowing from the drivers, so in-flight streams finish well
    // inside the deadline and the drain is clean (no force-abort).
    EXPECT_TRUE(server.Drain(/*deadline_ms=*/20000))
        << "drain forced an abort at --threads " << threads;
    for (std::thread& t : drivers) t.join();

    size_t refused = 0;
    for (int s = 0; s < kSessions; ++s) {
      for (size_t q = 0; q < outcomes[s].size(); ++q) {
        const StreamOutcome& out = outcomes[s][q];
        if (out.error.ok()) {
          // The never-truncation contract: a stream that reports success is
          // the complete reference segment, bit for bit.
          EXPECT_EQ(out.payloads, segments[q])
              << "session " << s << " query " << q << " at --threads "
              << threads;
        } else {
          ++refused;
          EXPECT_NE(out.error.message().find("SHUTTING_DOWN"),
                    std::string::npos)
              << out.error.message();
          // A refused or aborted stream delivered a bit-identical prefix of
          // its reference segment — never reordered or corrupted frames.
          ASSERT_LE(out.payloads.size(), segments[q].size());
          for (size_t i = 0; i < out.payloads.size(); ++i) {
            EXPECT_EQ(out.payloads[i], segments[q][i]);
          }
        }
      }
    }
    // Shutdown raced ahead of the second queries, so at least one was shed
    // with the clean error (all of them, with this timing).
    EXPECT_GT(refused, 0u) << "at --threads " << threads;
    EXPECT_EQ(server.ActiveStreams(), 0u);

    // Post-drain opens are refused with the same clean error.
    auto late = std::make_shared<PipeTransport>();
    ClientMessage open;
    open.kind = ClientMessageKind::kOpenSession;
    open.model_name = "taxi";
    server.Handle(open, late);
    ServerMessage reply = late->Pop();
    EXPECT_EQ(reply.kind, ServerMessageKind::kError);
    EXPECT_NE(reply.message.find("SHUTTING_DOWN"), std::string::npos);
  }
  util::SetGlobalThreads(0);  // restore hardware default
}

TEST(ServerSessionTest, SchedulerQueueBoundShedsWithServerBusy) {
  // A dedicated pool with a real worker thread: the pool of parallelism 1
  // runs Submit inline, which would park the gate task on this thread.
  util::ThreadPool pool(2);
  RequestScheduler scheduler(&pool, /*max_queue_per_strand=*/2);

  // Park the strand on a gate so queued tasks pile up deterministically.
  std::promise<void> started;
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  std::atomic<int> ran{0};
  ASSERT_TRUE(scheduler
                  .Post(7,
                        [&] {
                          started.set_value();
                          gate.wait();
                          ++ran;
                        })
                  .ok());
  started.get_future().wait();  // gate task is running; queue is empty

  ASSERT_TRUE(scheduler.Post(7, [&] { ++ran; }).ok());
  ASSERT_TRUE(scheduler.Post(7, [&] { ++ran; }).ok());

  // Queue at the bound: the next client post is shed with SERVER_BUSY
  // instead of growing without limit.
  util::Status shed = scheduler.Post(7, [&] { ++ran; });
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.code(), util::StatusCode::kUnavailable);
  EXPECT_NE(shed.message().find("SERVER_BUSY"), std::string::npos);

  // Internal progress work is exempt — a backlogged session can still
  // drain itself — and other strands are unaffected by this one's backlog.
  EXPECT_TRUE(scheduler.PostInternal(7, [&] { ++ran; }).ok());
  EXPECT_TRUE(scheduler.Post(8, [&] { ++ran; }).ok());

  release.set_value();
  scheduler.WaitIdle();
  EXPECT_EQ(ran.load(), 5);  // everything accepted ran; the shed task never did
}

}  // namespace
}  // namespace deepaqp::server
