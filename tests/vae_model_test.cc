#include "vae/vae_model.h"

#include <cmath>

#include <gtest/gtest.h>

#include "aqp/evaluation.h"
#include "aqp/executor.h"
#include "aqp/metrics.h"
#include "data/generators.h"
#include "data/workload.h"

namespace deepaqp::vae {
namespace {

VaeAqpOptions FastOptions() {
  VaeAqpOptions opts;
  opts.epochs = 8;
  opts.hidden_dim = 48;
  opts.batch_size = 128;
  opts.seed = 5;
  opts.encoder.numeric_bins = 16;
  return opts;
}

TEST(VaeModelTest, TrainRejectsDegenerateInputs) {
  relation::Schema s;
  ASSERT_TRUE(s.AddAttribute("x", relation::AttrType::kNumeric).ok());
  relation::Table empty(s);
  EXPECT_FALSE(VaeAqpModel::Train(empty, FastOptions()).ok());

  auto table = data::GenerateTaxi({.rows = 100, .seed = 1});
  VaeAqpOptions bad = FastOptions();
  bad.epochs = 0;
  EXPECT_FALSE(VaeAqpModel::Train(table, bad).ok());
}

TEST(VaeModelTest, GeneratedTableHasSchemaAndDomains) {
  auto table = data::GenerateTaxi({.rows = 3000, .seed = 2});
  auto model = VaeAqpModel::Train(table, FastOptions());
  ASSERT_TRUE(model.ok());
  util::Rng rng(3);
  auto sample = (*model)->Generate(500, kTPlusInf, rng);
  EXPECT_EQ(sample.num_rows(), 500u);
  EXPECT_TRUE(sample.schema() == table.schema());
  for (size_t r = 0; r < sample.num_rows(); ++r) {
    EXPECT_GE(sample.CatCode(r, 0), 0);
    EXPECT_LT(sample.CatCode(r, 0), 5);  // 5 boroughs
    EXPECT_GE(sample.NumValue(r, 4), 0.0);  // distances non-negative
  }
  // Declared cardinalities survive generation (group-by support).
  EXPECT_EQ(sample.Cardinality(2), 24);
}

TEST(VaeModelTest, LearnsMarginalDistribution) {
  auto table = data::GenerateTaxi({.rows = 6000, .seed = 4});
  VaeAqpOptions opts = FastOptions();
  opts.epochs = 15;
  auto model = VaeAqpModel::Train(table, opts);
  ASSERT_TRUE(model.ok());
  util::Rng rng(5);
  auto sample = (*model)->Generate(3000, (*model)->default_t(), rng);

  // Borough marginal should roughly match (Manhattan ~55%).
  auto frac = [](const relation::Table& t, int32_t code) {
    size_t hits = 0;
    for (size_t r = 0; r < t.num_rows(); ++r) {
      hits += t.CatCode(r, 0) == code;
    }
    return static_cast<double>(hits) / t.num_rows();
  };
  EXPECT_NEAR(frac(sample, 0), frac(table, 0), 0.15);

  // Mean fare should land in the right ballpark.
  aqp::AggregateQuery q;
  q.agg = aqp::AggFunc::kAvg;
  q.measure_attr = table.schema().IndexOf("fare");
  const double truth = aqp::ExecuteExact(q, table)->Scalar();
  const double est = aqp::ExecuteExact(q, sample)->Scalar();
  EXPECT_LT(aqp::RelativeError(est, truth), 0.35);
}

TEST(VaeModelTest, RejectionThresholdControlsSamplingCost) {
  auto table = data::GenerateTaxi({.rows = 3000, .seed = 6});
  auto model = VaeAqpModel::Train(table, FastOptions());
  ASSERT_TRUE(model.ok());
  util::Rng r1(7), r2(7), r3(7);
  // All three thresholds produce the requested row count.
  EXPECT_EQ((*model)->Generate(200, kTPlusInf, r1).num_rows(), 200u);
  EXPECT_EQ((*model)->Generate(200, 0.0, r2).num_rows(), 200u);
  EXPECT_EQ((*model)->Generate(50, kTMinusInf, r3).num_rows(), 50u);
}

TEST(VaeModelTest, RElboLossDecreasesWithStricterT) {
  auto table = data::GenerateTaxi({.rows = 4000, .seed = 8});
  VaeAqpOptions opts = FastOptions();
  opts.epochs = 12;
  auto model = VaeAqpModel::Train(table, opts);
  ASSERT_TRUE(model.ok());
  // The threshold must sit on the model's calibrated log-ratio scale;
  // absolute small values reject every draw and degenerate to the plain
  // ELBO.
  const double strict_t = (*model)->default_t() - 5.0;
  double loose = 0.0, strict = 0.0;
  for (int i = 0; i < 5; ++i) {
    util::Rng ra(50 + i), rb(50 + i);
    loose += (*model)->RElboLoss(table, kTPlusInf, ra, 1024);
    strict += (*model)->RElboLoss(table, strict_t, rb, 1024);
  }
  // Resampling can only improve (lower) the bound, up to MC noise.
  EXPECT_LE(strict, loose + 0.2);
}

TEST(VaeModelTest, DefaultTIsFiniteAfterVrsTraining) {
  auto table = data::GenerateTaxi({.rows = 2000, .seed = 9});
  auto model = VaeAqpModel::Train(table, FastOptions());
  ASSERT_TRUE(model.ok());
  EXPECT_TRUE(std::isfinite((*model)->default_t()));
}

TEST(VaeModelTest, TrainingStatsPopulated) {
  auto table = data::GenerateTaxi({.rows = 1000, .seed = 10});
  TrainingStats stats;
  auto model = VaeAqpModel::Train(table, FastOptions(), &stats);
  ASSERT_TRUE(model.ok());
  ASSERT_EQ(stats.epochs.size(), 8u);
  EXPECT_GT(stats.total_seconds, 0.0);
  // Loss should drop from first to last epoch.
  EXPECT_LT(stats.epochs.back().recon_loss + stats.epochs.back().kl,
            stats.epochs.front().recon_loss + stats.epochs.front().kl);
  // VRS kicks in after warmup; acceptance then reflects the 0.9 target.
  EXPECT_LE(stats.epochs.back().acceptance, 1.0);
}

TEST(VaeModelTest, SerializeRoundTripGeneratesSameDistribution) {
  auto table = data::GenerateTaxi({.rows = 2000, .seed = 11});
  auto model = VaeAqpModel::Train(table, FastOptions());
  ASSERT_TRUE(model.ok());
  auto bytes = (*model)->Serialize();
  EXPECT_GT(bytes.size(), 1000u);
  auto back = VaeAqpModel::Deserialize(bytes);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ((*back)->default_t(), (*model)->default_t());
  EXPECT_EQ((*back)->ModelSizeBytes(), bytes.size());

  util::Rng r1(12), r2(12);
  auto s1 = (*model)->Generate(100, kTPlusInf, r1);
  auto s2 = (*back)->Generate(100, kTPlusInf, r2);
  // Same weights + same RNG stream => identical samples.
  for (size_t r = 0; r < 100; ++r) {
    EXPECT_EQ(s1.CatCode(r, 0), s2.CatCode(r, 0));
  }
}

TEST(VaeModelTest, DeserializeRejectsGarbage) {
  std::vector<uint8_t> junk = {1, 2, 3, 4};
  EXPECT_FALSE(VaeAqpModel::Deserialize(junk).ok());
  util::ByteWriter w;
  w.WriteString("not-a-model");
  EXPECT_FALSE(VaeAqpModel::Deserialize(w.bytes()).ok());
}

TEST(VaeModelTest, ModelIsCompactRelativeToData) {
  // The paper's pitch: the model is far smaller than the relation.
  auto table = data::GenerateCensus({.rows = 20000, .seed = 13});
  VaeAqpOptions opts = FastOptions();
  opts.epochs = 2;  // size does not depend on training length
  auto model = VaeAqpModel::Train(table, opts);
  ASSERT_TRUE(model.ok());
  const size_t model_bytes = (*model)->ModelSizeBytes();
  const size_t data_bytes = table.num_rows() * 14 * sizeof(double);
  EXPECT_LT(model_bytes, data_bytes / 4);
  EXPECT_LT(model_bytes, 600u * 1024u);  // "few hundred KBs"
}

TEST(VaeModelTest, SamplerIntegratesWithRedHarness) {
  auto table = data::GenerateTaxi({.rows = 5000, .seed = 14});
  VaeAqpOptions opts = FastOptions();
  opts.epochs = 15;
  auto model = VaeAqpModel::Train(table, opts);
  ASSERT_TRUE(model.ok());

  data::WorkloadConfig wcfg;
  wcfg.num_queries = 20;
  auto workload = data::GenerateWorkload(table, wcfg);
  aqp::EvalOptions eopts;
  eopts.sample_fraction = 0.05;
  eopts.num_trials = 3;
  auto red = aqp::RelativeErrorDifferences(
      workload, table, (*model)->MakeSampler((*model)->default_t()), eopts);
  ASSERT_TRUE(red.ok());
  auto summary = aqp::DistributionSummary::FromValues(*red);
  // A briefly-trained model on an easy dataset: median RED under 50%.
  EXPECT_LT(summary.median, 0.5);
}

}  // namespace
}  // namespace deepaqp::vae
