// Locks in the PR's core guarantee: every parallel region (training GEMMs,
// chunked sample generation, pairwise distances, per-partition ensemble
// training) produces bit-identical results at 1, 2, and 8 threads from the
// same seed. Each helper below reruns a pipeline from scratch under
// util::SetGlobalThreads(t) and the test compares the artifacts exactly —
// no tolerances anywhere.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "data/generators.h"
#include "ensemble/ensemble_model.h"
#include "ensemble/partitioning.h"
#include "relation/table.h"
#include "stats/cross_match.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "util/topology.h"
#include "vae/vae_model.h"

namespace deepaqp {
namespace {

const int kThreadCounts[] = {1, 2, 8};

relation::Table TrainingTable() {
  return data::GenerateCensus({.rows = 300, .seed = 11});
}

vae::VaeAqpOptions SmallVaeOptions() {
  vae::VaeAqpOptions options;
  options.epochs = 3;
  options.batch_size = 96;  // > one gradient shard, so reduction order matters
  options.hidden_dim = 24;
  options.latent_dim = 6;
  options.encoder.numeric_bins = 8;
  options.seed = 4242;
  return options;
}

void ExpectTablesIdentical(const relation::Table& a,
                           const relation::Table& b) {
  ASSERT_EQ(a.num_rows(), b.num_rows());
  ASSERT_EQ(a.num_attributes(), b.num_attributes());
  for (size_t c = 0; c < a.num_attributes(); ++c) {
    for (size_t r = 0; r < a.num_rows(); ++r) {
      if (a.schema().IsCategorical(c)) {
        ASSERT_EQ(a.CatCode(r, c), b.CatCode(r, c))
            << "row " << r << " col " << c;
      } else {
        // Bitwise equality: EXPECT_EQ on doubles, not EXPECT_NEAR.
        ASSERT_EQ(a.NumValue(r, c), b.NumValue(r, c))
            << "row " << r << " col " << c;
      }
    }
  }
}

TEST(ParallelDeterminismTest, TrainingLossTrajectoryAndWeights) {
  const relation::Table table = TrainingTable();
  std::vector<vae::TrainingStats> stats(3);
  std::vector<std::vector<uint8_t>> bytes(3);
  for (int i = 0; i < 3; ++i) {
    util::SetGlobalThreads(kThreadCounts[i]);
    auto model = vae::VaeAqpModel::Train(table, SmallVaeOptions(), &stats[i]);
    ASSERT_TRUE(model.ok()) << model.status().ToString();
    bytes[i] = (*model)->Serialize();
  }
  util::SetGlobalThreads(0);
  for (int i = 1; i < 3; ++i) {
    ASSERT_EQ(stats[0].epochs.size(), stats[i].epochs.size());
    for (size_t e = 0; e < stats[0].epochs.size(); ++e) {
      // Exact double equality: the loss trajectory is the golden artifact.
      EXPECT_EQ(stats[0].epochs[e].recon_loss, stats[i].epochs[e].recon_loss)
          << "epoch " << e << " at " << kThreadCounts[i] << " threads";
      EXPECT_EQ(stats[0].epochs[e].kl, stats[i].epochs[e].kl)
          << "epoch " << e << " at " << kThreadCounts[i] << " threads";
      EXPECT_EQ(stats[0].epochs[e].acceptance, stats[i].epochs[e].acceptance)
          << "epoch " << e << " at " << kThreadCounts[i] << " threads";
    }
    // Serialized weights capture every parameter bit.
    EXPECT_EQ(bytes[0], bytes[i])
        << "weights diverged at " << kThreadCounts[i] << " threads";
  }
}

TEST(ParallelDeterminismTest, GeneratedSamplePool) {
  const relation::Table table = TrainingTable();
  util::SetGlobalThreads(1);
  auto trained = vae::VaeAqpModel::Train(table, SmallVaeOptions());
  ASSERT_TRUE(trained.ok()) << trained.status().ToString();
  vae::VaeAqpModel& model = **trained;

  // 1500 rows spans several 512-row generation chunks, exercising both the
  // chunk fan-out and the in-chunk rejection loop.
  std::vector<relation::Table> pools;
  for (int t : kThreadCounts) {
    util::SetGlobalThreads(t);
    util::Rng rng(777);
    pools.push_back(model.Generate(1500, model.default_t(), rng));
  }
  util::SetGlobalThreads(0);
  ASSERT_EQ(pools[0].num_rows(), 1500u);
  ExpectTablesIdentical(pools[0], pools[1]);
  ExpectTablesIdentical(pools[0], pools[2]);
}

// Placement policies decide *where* a loop index runs, never what it
// computes: under a synthetic 2-node topology (the build machines have one
// node), every policy must reproduce the pin=off pool bit-for-bit at every
// thread count — including counts that straddle the fake node boundary.
TEST(ParallelDeterminismTest, PinnedPoliciesMatchUnpinnedExactly) {
  const relation::Table table = TrainingTable();
  util::SetGlobalThreads(1);
  auto trained = vae::VaeAqpModel::Train(table, SmallVaeOptions());
  ASSERT_TRUE(trained.ok()) << trained.status().ToString();
  vae::VaeAqpModel& model = **trained;

  util::CpuTopology two_node;
  two_node.nodes.push_back({.id = 0, .cpus = {0, 1}});
  two_node.nodes.push_back({.id = 1, .cpus = {2, 3}});
  util::SetTopologyForTest(&two_node);
  const util::PinPolicy saved = util::ActivePinPolicy();

  const int pin_threads[] = {1, 4, 8};
  std::vector<relation::Table> pools;
  for (util::PinPolicy policy :
       {util::PinPolicy::kOff, util::PinPolicy::kCompact,
        util::PinPolicy::kScatter}) {
    for (int t : pin_threads) {
      util::SetPinPolicy(policy);
      util::SetGlobalThreads(t);  // rebuild the pool under (policy, t)
      util::Rng rng(777);
      pools.push_back(model.Generate(1500, model.default_t(), rng));
    }
  }

  util::SetTopologyForTest(nullptr);
  util::SetPinPolicy(saved);
  util::SetGlobalThreads(0);

  ASSERT_EQ(pools[0].num_rows(), 1500u);
  for (size_t i = 1; i < pools.size(); ++i) {
    SCOPED_TRACE("policy/thread combination " + std::to_string(i));
    ExpectTablesIdentical(pools[0], pools[i]);
  }
}

TEST(ParallelDeterminismTest, CrossMatchPValue) {
  // Two Gaussian clouds with a planted mean shift; n = 120 points total
  // makes the O(n^2) distance build big enough to actually fan out.
  std::vector<stats::CrossMatchResult> results;
  for (int t : kThreadCounts) {
    util::SetGlobalThreads(t);
    util::Rng data_rng(31337);
    std::vector<std::vector<double>> d, m;
    for (int i = 0; i < 61; ++i) {
      d.push_back({data_rng.NextGaussian(), data_rng.NextGaussian()});
    }
    for (int i = 0; i < 59; ++i) {
      m.push_back({data_rng.NextGaussian() + 0.4, data_rng.NextGaussian()});
    }
    util::Rng test_rng(99);
    auto result = stats::CrossMatchTest(d, m, test_rng);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    results.push_back(*result);
  }
  util::SetGlobalThreads(0);
  for (size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[0].p_value, results[i].p_value);
    EXPECT_EQ(results[0].a_dm, results[i].a_dm);
    EXPECT_EQ(results[0].a_dd, results[i].a_dd);
    EXPECT_EQ(results[0].a_mm, results[i].a_mm);
  }
}

TEST(ParallelDeterminismTest, EnsembleTraining) {
  const relation::Table table = TrainingTable();
  // Four atomic groups by row stripes, two parts of two groups each.
  std::vector<ensemble::AtomicGroup> groups(4);
  for (size_t r = 0; r < table.num_rows(); ++r) {
    groups[r % 4].rows.push_back(r);
  }
  ensemble::Partition partition;
  partition.parts = {{0, 1}, {2, 3}};

  vae::VaeAqpOptions options = SmallVaeOptions();
  options.epochs = 2;
  std::vector<std::vector<uint8_t>> bytes;
  std::vector<relation::Table> pools;
  for (int t : kThreadCounts) {
    util::SetGlobalThreads(t);
    auto model = ensemble::EnsembleModel::Train(table, groups, partition,
                                                options);
    ASSERT_TRUE(model.ok()) << model.status().ToString();
    bytes.push_back((*model)->Serialize());
    util::Rng rng(555);
    pools.push_back((*model)->Generate(600, vae::kTPlusInf, rng));
  }
  util::SetGlobalThreads(0);
  for (size_t i = 1; i < bytes.size(); ++i) {
    EXPECT_EQ(bytes[0], bytes[i])
        << "ensemble weights diverged at " << kThreadCounts[i] << " threads";
    ExpectTablesIdentical(pools[0], pools[i]);
  }
}

}  // namespace
}  // namespace deepaqp
