#include "data/workload.h"

#include <gtest/gtest.h>

#include "aqp/executor.h"
#include "data/generators.h"

namespace deepaqp::data {
namespace {

TEST(WorkloadTest, GeneratesRequestedCount) {
  auto table = GenerateCensus({.rows = 5000, .seed = 1});
  WorkloadConfig cfg;
  cfg.num_queries = 50;
  auto workload = GenerateWorkload(table, cfg);
  EXPECT_EQ(workload.size(), 50u);
}

TEST(WorkloadTest, AllQueriesValidateAndMeetSelectivityFloor) {
  auto table = GenerateCensus({.rows = 5000, .seed = 2});
  WorkloadConfig cfg;
  cfg.num_queries = 80;
  cfg.min_selectivity = 0.001;
  auto workload = GenerateWorkload(table, cfg);
  for (const auto& q : workload) {
    EXPECT_TRUE(aqp::ValidateQuery(q, table).ok());
    EXPECT_GE(aqp::Selectivity(q, table), 0.001);
  }
}

TEST(WorkloadTest, DeterministicForSeed) {
  auto table = GenerateTaxi({.rows = 2000, .seed = 3});
  WorkloadConfig cfg;
  cfg.num_queries = 20;
  auto a = GenerateWorkload(table, cfg);
  auto b = GenerateWorkload(table, cfg);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].ToString(table.schema()), b[i].ToString(table.schema()));
  }
}

TEST(WorkloadTest, IsDiverse) {
  auto table = GenerateCensus({.rows = 8000, .seed = 4});
  WorkloadConfig cfg;
  cfg.num_queries = 200;
  auto workload = GenerateWorkload(table, cfg);
  int count_q = 0, sum_q = 0, avg_q = 0, group_q = 0, filtered_q = 0,
      disjunctive_q = 0;
  for (const auto& q : workload) {
    count_q += q.agg == aqp::AggFunc::kCount;
    sum_q += q.agg == aqp::AggFunc::kSum;
    avg_q += q.agg == aqp::AggFunc::kAvg;
    group_q += q.IsGroupBy();
    filtered_q += !q.filter.conditions.empty();
    disjunctive_q +=
        q.filter.conditions.size() >= 2 && !q.filter.conjunctive;
  }
  EXPECT_GT(count_q, 20);
  EXPECT_GT(sum_q, 20);
  EXPECT_GT(avg_q, 20);
  EXPECT_GT(group_q, 30);
  EXPECT_GT(filtered_q, 100);
  EXPECT_GT(disjunctive_q, 2);
}

TEST(WorkloadTest, GroupByRespectsCardinalityCap) {
  auto table = GenerateFlights({.rows = 3000, .seed = 5});
  WorkloadConfig cfg;
  cfg.num_queries = 100;
  cfg.max_group_cardinality = 20;
  auto workload = GenerateWorkload(table, cfg);
  for (const auto& q : workload) {
    if (q.IsGroupBy()) {
      EXPECT_LE(table.Cardinality(static_cast<size_t>(q.group_by_attr)), 20);
    }
  }
}

TEST(WorkloadTest, SelectivityBucketsPartitionWorkload) {
  auto table = GenerateCensus({.rows = 5000, .seed = 6});
  WorkloadConfig cfg;
  cfg.num_queries = 150;
  cfg.min_selectivity = 0.0002;
  auto workload = GenerateWorkload(table, cfg);
  auto buckets = BucketBySelectivity(workload, table);
  EXPECT_EQ(buckets.high.size() + buckets.mid.size() + buckets.low.size(),
            workload.size());
  for (size_t i : buckets.high) {
    EXPECT_GE(aqp::Selectivity(workload[i], table), 0.1);
  }
  for (size_t i : buckets.mid) {
    const double s = aqp::Selectivity(workload[i], table);
    EXPECT_GE(s, 0.01);
    EXPECT_LT(s, 0.1);
  }
  for (size_t i : buckets.low) {
    EXPECT_LT(aqp::Selectivity(workload[i], table), 0.01);
  }
  // The generator should produce a spread across buckets.
  EXPECT_GT(buckets.high.size(), 10u);
  EXPECT_GT(buckets.mid.size() + buckets.low.size(), 10u);
}

}  // namespace
}  // namespace deepaqp::data
