// Client query-cache correctness: pool growth via QueryWithMaxRelativeCi
// must evaluate only the newly generated suffix rows, yet return results
// byte-identical to a cold-cache (scalar-engine) client at the same seed.

#include <cstring>

#include <gtest/gtest.h>

#include "aqp/engine.h"
#include "aqp/estimator.h"
#include "data/generators.h"
#include "vae/client.h"

namespace deepaqp {
namespace {

uint64_t Bits(double x) {
  uint64_t b = 0;
  std::memcpy(&b, &x, sizeof(b));
  return b;
}

void ExpectBitIdentical(const aqp::QueryResult& a, const aqp::QueryResult& b,
                        const std::string& context) {
  ASSERT_EQ(a.groups.size(), b.groups.size()) << context;
  for (size_t i = 0; i < a.groups.size(); ++i) {
    EXPECT_EQ(a.groups[i].group, b.groups[i].group) << context;
    EXPECT_EQ(a.groups[i].support, b.groups[i].support) << context;
    EXPECT_EQ(Bits(a.groups[i].value), Bits(b.groups[i].value)) << context;
    EXPECT_EQ(Bits(a.groups[i].ci_half_width), Bits(b.groups[i].ci_half_width))
        << context;
  }
}

/// Forces the vector engine for the test body (the cache under test only
/// exists there) and restores whatever DEEPAQP_ENGINE chose on exit.
struct EngineGuard {
  aqp::EngineKind saved = aqp::ActiveEngine();
  EngineGuard() { aqp::SetEngine(aqp::EngineKind::kVector); }
  ~EngineGuard() { aqp::SetEngine(saved); }
};

/// One small model, trained once and re-opened from bytes per client so
/// every client in this suite sees the identical generator.
const std::vector<uint8_t>& ModelBytes() {
  static const std::vector<uint8_t>* bytes = [] {
    auto table = data::GenerateTaxi({.rows = 4000, .seed = 21});
    vae::VaeAqpOptions opts;
    opts.epochs = 8;
    opts.hidden_dim = 48;
    opts.seed = 77;
    opts.encoder.numeric_bins = 16;
    auto model = vae::VaeAqpModel::Train(table, opts);
    EXPECT_TRUE(model.ok());
    return new std::vector<uint8_t>((*model)->Serialize());
  }();
  return *bytes;
}

/// A second model over the same schema (different training seed): swapping
/// to it must discard every cached artifact of the first.
const std::vector<uint8_t>& SwappedModelBytes() {
  static const std::vector<uint8_t>* bytes = [] {
    auto table = data::GenerateTaxi({.rows = 4000, .seed = 21});
    vae::VaeAqpOptions opts;
    opts.epochs = 8;
    opts.hidden_dim = 48;
    opts.seed = 78;
    opts.encoder.numeric_bins = 16;
    auto model = vae::VaeAqpModel::Train(table, opts);
    EXPECT_TRUE(model.ok());
    return new std::vector<uint8_t>((*model)->Serialize());
  }();
  return *bytes;
}

vae::AqpClient::Options ClientOptions() {
  vae::AqpClient::Options copts;
  copts.initial_samples = 400;
  copts.max_samples = 6400;
  copts.population_rows = 4000;
  copts.seed = 2027;
  return copts;
}

aqp::AggregateQuery FilteredAvg(const vae::AqpClient& client) {
  aqp::AggregateQuery q;
  q.agg = aqp::AggFunc::kAvg;
  q.measure_attr = client.pool().schema().IndexOf("fare");
  q.filter.conditions.push_back(
      {static_cast<size_t>(client.pool().schema().IndexOf("trip_distance")),
       aqp::CmpOp::kGt, 1.0});
  return q;
}

TEST(ClientCacheTest, GrowthMatchesColdScalarClientBitForBit) {
  EngineGuard guard;
  auto warm = vae::AqpClient::Open(ModelBytes(), ClientOptions());
  ASSERT_TRUE(warm.ok());
  aqp::AggregateQuery q = FilteredAvg(**warm);
  auto warm_result = (*warm)->QueryWithMaxRelativeCi(q, 0.03);
  ASSERT_TRUE(warm_result.ok());
  EXPECT_GT((*warm)->pool_size(), 400u);  // precision-on-demand grew

  // Cold client under the scalar engine: full rescans, no cache at all.
  aqp::SetEngine(aqp::EngineKind::kScalar);
  auto cold = vae::AqpClient::Open(ModelBytes(), ClientOptions());
  ASSERT_TRUE(cold.ok());
  auto cold_result = (*cold)->QueryWithMaxRelativeCi(q, 0.03);
  ASSERT_TRUE(cold_result.ok());

  EXPECT_EQ((*warm)->pool_size(), (*cold)->pool_size());
  ExpectBitIdentical(*warm_result, *cold_result, "growth query");
  EXPECT_EQ((*cold)->cache_stats().agg_entries, 0u);  // cache bypassed

  // Suffix-only evaluation: across the whole doubling trajectory every pool
  // row went through the filter kernel and the aggregation pass exactly
  // once — a cache-less client would have rescanned each prefix per round.
  const auto& stats = (*warm)->cache_stats();
  EXPECT_EQ(stats.filter_entries, 1u);
  EXPECT_EQ(stats.agg_entries, 1u);
  EXPECT_EQ(stats.rows_filtered, (*warm)->pool_size());
  EXPECT_EQ(stats.rows_aggregated, (*warm)->pool_size());
}

TEST(ClientCacheTest, RepeatedQueryReevaluatesNothing) {
  EngineGuard guard;
  auto client = vae::AqpClient::Open(ModelBytes(), ClientOptions());
  ASSERT_TRUE(client.ok());
  aqp::AggregateQuery q = FilteredAvg(**client);
  auto first = (*client)->Query(q);
  ASSERT_TRUE(first.ok());
  const uint64_t filtered = (*client)->cache_stats().rows_filtered;
  const uint64_t aggregated = (*client)->cache_stats().rows_aggregated;
  auto second = (*client)->Query(q);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ((*client)->cache_stats().rows_filtered, filtered);
  EXPECT_EQ((*client)->cache_stats().rows_aggregated, aggregated);
  ExpectBitIdentical(*first, *second, "repeat");
}

TEST(ClientCacheTest, PredicateBitmapSharedAcrossMeasures) {
  EngineGuard guard;
  auto client = vae::AqpClient::Open(ModelBytes(), ClientOptions());
  ASSERT_TRUE(client.ok());
  aqp::AggregateQuery q1 = FilteredAvg(**client);
  aqp::AggregateQuery q2 = q1;
  q2.measure_attr = (*client)->pool().schema().IndexOf("duration_min");
  ASSERT_TRUE((*client)->Query(q1).ok());
  ASSERT_TRUE((*client)->Query(q2).ok());
  const auto& stats = (*client)->cache_stats();
  EXPECT_EQ(stats.filter_entries, 1u);  // one bitmap for both measures
  EXPECT_EQ(stats.agg_entries, 2u);
  EXPECT_EQ(stats.rows_filtered, (*client)->pool_size());
}

TEST(ClientCacheTest, QuantileLevelsShareAccumulation) {
  EngineGuard guard;
  auto client = vae::AqpClient::Open(ModelBytes(), ClientOptions());
  ASSERT_TRUE(client.ok());
  aqp::AggregateQuery q = FilteredAvg(**client);
  q.agg = aqp::AggFunc::kQuantile;
  q.quantile = 0.5;
  auto median = (*client)->Query(q);
  ASSERT_TRUE(median.ok());
  q.quantile = 0.9;
  auto p90 = (*client)->Query(q);
  ASSERT_TRUE(p90.ok());
  EXPECT_EQ((*client)->cache_stats().agg_entries, 1u);

  // Both levels must agree with a cache-less scalar scan of the same pool.
  aqp::SetEngine(aqp::EngineKind::kScalar);
  q.quantile = 0.5;
  auto median_ref =
      aqp::EstimateFromSample(q, (*client)->pool(), 4000);
  q.quantile = 0.9;
  auto p90_ref = aqp::EstimateFromSample(q, (*client)->pool(), 4000);
  ASSERT_TRUE(median_ref.ok() && p90_ref.ok());
  ExpectBitIdentical(*median, *median_ref, "median");
  ExpectBitIdentical(*p90, *p90_ref, "p90");
}

TEST(ClientCacheTest, ModelSwapInvalidatesCacheAndMatchesFreshClient) {
  EngineGuard guard;
  ASSERT_NE(ModelBytes(), SwappedModelBytes());  // genuinely different model

  auto client = vae::AqpClient::Open(ModelBytes(), ClientOptions());
  ASSERT_TRUE(client.ok());
  aqp::AggregateQuery q = FilteredAvg(**client);
  ASSERT_TRUE((*client)->QueryWithMaxRelativeCi(q, 0.03).ok());
  EXPECT_GT((*client)->cache_stats().agg_entries, 0u);
  EXPECT_GT((*client)->pool_size(), 400u);

  // Hot swap: pool, bitmaps, group moments and the rng stream all reset —
  // nothing computed against the old generator may answer new queries.
  auto model_b = vae::VaeAqpModel::Deserialize(SwappedModelBytes());
  ASSERT_TRUE(model_b.ok());
  (*client)->SwapModel(std::move(*model_b));
  const auto& stats = (*client)->cache_stats();
  EXPECT_EQ(stats.invalidations, 1u);
  EXPECT_EQ(stats.filter_entries, 0u);
  EXPECT_EQ(stats.agg_entries, 0u);
  EXPECT_EQ((*client)->pool_size(), 400u);  // back to initial_samples

  // Post-swap behaviour is bit-identical to a client freshly opened on the
  // new model: the swap left no trace of the old one.
  auto swapped = (*client)->QueryWithMaxRelativeCi(q, 0.03);
  ASSERT_TRUE(swapped.ok());
  auto fresh = vae::AqpClient::Open(SwappedModelBytes(), ClientOptions());
  ASSERT_TRUE(fresh.ok());
  auto fresh_result = (*fresh)->QueryWithMaxRelativeCi(q, 0.03);
  ASSERT_TRUE(fresh_result.ok());
  EXPECT_EQ((*client)->pool_size(), (*fresh)->pool_size());
  ExpectBitIdentical(*swapped, *fresh_result, "post-swap growth");
}

TEST(ClientCacheTest, GroupByGrowthHandlesNewGroupCodes) {
  EngineGuard guard;
  auto client = vae::AqpClient::Open(ModelBytes(), ClientOptions());
  ASSERT_TRUE(client.ok());
  aqp::AggregateQuery q;
  q.agg = aqp::AggFunc::kAvg;
  q.measure_attr = (*client)->pool().schema().IndexOf("fare");
  q.group_by_attr = (*client)->pool().schema().IndexOf("pickup_borough");
  auto grown = (*client)->QueryWithMaxRelativeCi(q, 0.05);
  ASSERT_TRUE(grown.ok());

  aqp::SetEngine(aqp::EngineKind::kScalar);
  auto reference = aqp::EstimateFromSample(q, (*client)->pool(), 4000);
  ASSERT_TRUE(reference.ok());
  ExpectBitIdentical(*grown, *reference, "group-by growth");
}

}  // namespace
}  // namespace deepaqp
