#include <cmath>

#include <gtest/gtest.h>

#include "aqp/executor.h"
#include "aqp/metrics.h"
#include "baselines/bayes_net.h"
#include "baselines/discretizer.h"
#include "baselines/mspn.h"
#include "data/generators.h"

namespace deepaqp::baselines {
namespace {

double Correlation(const relation::Table& t, size_t a, size_t b) {
  double ma = 0, mb = 0;
  const size_t n = t.num_rows();
  for (size_t r = 0; r < n; ++r) {
    ma += t.CellAsDouble(r, a);
    mb += t.CellAsDouble(r, b);
  }
  ma /= n;
  mb /= n;
  double sab = 0, saa = 0, sbb = 0;
  for (size_t r = 0; r < n; ++r) {
    const double da = t.CellAsDouble(r, a) - ma;
    const double db = t.CellAsDouble(r, b) - mb;
    sab += da * db;
    saa += da * da;
    sbb += db * db;
  }
  return sab / std::sqrt(saa * sbb);
}

TEST(DiscretizerTest, CategoricalPassThrough) {
  auto table = data::GenerateTaxi({.rows = 500, .seed = 1});
  auto d = Discretizer::Fit(table, 8);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->Cardinality(0), 5);
  EXPECT_EQ(d->CodeOf(table, 7, 0), table.CatCode(7, 0));
  EXPECT_FALSE(d->IsNumeric(0));
}

TEST(DiscretizerTest, NumericBinsRespectBudgetAndCoverRange) {
  auto table = data::GenerateTaxi({.rows = 2000, .seed = 2});
  const auto fare = static_cast<size_t>(table.schema().IndexOf("fare"));
  auto d = Discretizer::Fit(table, 8);
  ASSERT_TRUE(d.ok());
  EXPECT_LE(d->Cardinality(fare), 8);
  EXPECT_GE(d->Cardinality(fare), 2);
  for (size_t r = 0; r < 100; ++r) {
    const int32_t code = d->CodeOf(table, r, fare);
    EXPECT_GE(code, 0);
    EXPECT_LT(code, d->Cardinality(fare));
    auto [lo, hi] = d->BinRange(fare, code);
    EXPECT_LE(lo, hi);
  }
}

TEST(DiscretizerTest, EntropyBinsBalanceMass) {
  auto table = data::GenerateCensus({.rows = 8000, .seed = 3});
  const auto age = static_cast<size_t>(table.schema().IndexOf("age"));
  auto d = Discretizer::Fit(table, 8);
  ASSERT_TRUE(d.ok());
  std::vector<int> counts(d->Cardinality(age), 0);
  for (size_t r = 0; r < table.num_rows(); ++r) {
    ++counts[d->CodeOf(table, r, age)];
  }
  // Entropy-balanced bins: no bin should hold more than 3x its fair share.
  const int fair = static_cast<int>(table.num_rows()) / d->Cardinality(age);
  for (int c : counts) EXPECT_LE(c, 3 * fair);
}

TEST(DiscretizerTest, MaterializeStaysInBin) {
  auto table = data::GenerateTaxi({.rows = 1000, .seed = 4});
  const auto fare = static_cast<size_t>(table.schema().IndexOf("fare"));
  auto d = Discretizer::Fit(table, 8);
  ASSERT_TRUE(d.ok());
  util::Rng rng(5);
  for (int32_t code = 0; code < d->Cardinality(fare); ++code) {
    auto [lo, hi] = d->BinRange(fare, code);
    for (int i = 0; i < 10; ++i) {
      const double v = d->Materialize(fare, code, rng).num;
      EXPECT_GE(v, lo);
      EXPECT_LE(v, hi);
    }
  }
}

TEST(BayesNetTest, LearnsTreeAndGenerates) {
  auto table = data::GenerateCensus({.rows = 6000, .seed = 6});
  auto model = BayesNetModel::Train(table, {});
  ASSERT_TRUE(model.ok());
  // Exactly one root; every other attribute has a parent.
  int roots = 0;
  for (int p : (*model)->parents()) roots += p < 0;
  EXPECT_EQ(roots, 1);

  util::Rng rng(7);
  auto sample = (*model)->Generate(4000, rng);
  EXPECT_EQ(sample.num_rows(), 4000u);
  EXPECT_TRUE(sample.schema() == table.schema());
}

TEST(BayesNetTest, ChowLiuLinksStronglyDependentAttributes) {
  auto table = data::GenerateCensus({.rows = 8000, .seed = 8});
  auto model = BayesNetModel::Train(table, {});
  ASSERT_TRUE(model.ok());
  // education (1) and education_num (10) are nearly functionally dependent;
  // Chow-Liu must connect them directly.
  const auto& parents = (*model)->parents();
  const int edu = table.schema().IndexOf("education");
  const int edu_num = table.schema().IndexOf("education_num");
  EXPECT_TRUE(parents[edu] == edu_num || parents[edu_num] == edu);
}

TEST(BayesNetTest, PreservesTreeCorrelations) {
  auto table = data::GenerateCensus({.rows = 8000, .seed = 9});
  auto model = BayesNetModel::Train(table, {});
  ASSERT_TRUE(model.ok());
  util::Rng rng(10);
  auto sample = (*model)->Generate(8000, rng);
  const auto edu = static_cast<size_t>(table.schema().IndexOf("education"));
  const auto edu_num =
      static_cast<size_t>(table.schema().IndexOf("education_num"));
  const double real_corr = Correlation(table, edu, edu_num);
  const double synth_corr = Correlation(sample, edu, edu_num);
  // Direction preserved and magnitude substantial (discretization softens).
  EXPECT_LT(real_corr, -0.8);
  EXPECT_LT(synth_corr, -0.5);
}

TEST(BayesNetTest, SizeBytesGrowsWithBins) {
  auto table = data::GenerateCensus({.rows = 3000, .seed = 11});
  BayesNetModel::Options small, large;
  small.max_bins = 4;
  large.max_bins = 24;
  auto a = BayesNetModel::Train(table, small);
  auto b = BayesNetModel::Train(table, large);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_LT((*a)->SizeBytes(), (*b)->SizeBytes());
}

TEST(MspnTest, BuildsAndSamples) {
  auto table = data::GenerateCensus({.rows = 6000, .seed = 12});
  auto model = MspnModel::Train(table, {});
  ASSERT_TRUE(model.ok());
  EXPECT_GT((*model)->num_nodes(), 5u);
  EXPECT_GE((*model)->num_leaves(), table.num_attributes());
  util::Rng rng(13);
  auto sample = (*model)->Generate(2000, rng);
  EXPECT_EQ(sample.num_rows(), 2000u);
  EXPECT_TRUE(sample.schema() == table.schema());
}

TEST(MspnTest, SumSplitsCaptureRowStructure) {
  // Census has age-dependent structure; the learned SPN should contain at
  // least one sum node (row split) when rows are plentiful.
  auto table = data::GenerateCensus({.rows = 8000, .seed = 14});
  MspnModel::Options opts;
  opts.min_instances = 512;
  opts.dependency_threshold = 0.4;  // force row splits over attr splits
  auto model = MspnModel::Train(table, opts);
  ASSERT_TRUE(model.ok());
  EXPECT_GT((*model)->num_nodes(), table.num_attributes() + 1);
}

TEST(MspnTest, PreservesMarginalsRoughly) {
  auto table = data::GenerateTaxi({.rows = 6000, .seed = 15});
  auto model = MspnModel::Train(table, {});
  ASSERT_TRUE(model.ok());
  util::Rng rng(16);
  auto sample = (*model)->Generate(6000, rng);
  aqp::AggregateQuery q;
  q.agg = aqp::AggFunc::kAvg;
  q.measure_attr = table.schema().IndexOf("fare");
  const double truth = aqp::ExecuteExact(q, table)->Scalar();
  const double est = aqp::ExecuteExact(q, sample)->Scalar();
  EXPECT_LT(aqp::RelativeError(est, truth), 0.2);
}

TEST(MspnTest, RetainsSomeCorrelationUnlikeIndependenceModels) {
  auto table = data::GenerateTaxi({.rows = 8000, .seed = 17});
  MspnModel::Options opts;
  opts.min_instances = 256;
  opts.dependency_threshold = 0.02;
  auto model = MspnModel::Train(table, opts);
  ASSERT_TRUE(model.ok());
  util::Rng rng(18);
  auto sample = (*model)->Generate(8000, rng);
  const auto dist =
      static_cast<size_t>(table.schema().IndexOf("trip_distance"));
  const auto fare = static_cast<size_t>(table.schema().IndexOf("fare"));
  EXPECT_GT(Correlation(table, dist, fare), 0.8);
  // The SPN's mixture-of-products keeps a meaningful share of it.
  EXPECT_GT(Correlation(sample, dist, fare), 0.3);
}

}  // namespace
}  // namespace deepaqp::baselines
