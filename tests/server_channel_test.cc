// Deterministic protocol tests for the reliable precision-on-demand channel.
//
// The producer and consumer are pure state machines, so an adversarial
// network (loss, duplication, reordering, delayed delivery) is just a seeded
// schedule over explicit event queues — every run here is replayable
// byte-for-byte from its util::Rng seed.

#include <cstdio>
#include <deque>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "server/channel.h"
#include "server/wire.h"
#include "util/rng.h"

namespace deepaqp::server {
namespace {

std::vector<uint8_t> Payload(uint64_t i) {
  std::vector<uint8_t> bytes(8);
  for (int b = 0; b < 8; ++b) bytes[b] = static_cast<uint8_t>(i >> (8 * b));
  return bytes;
}

std::vector<std::vector<uint8_t>> ExpectedPayloads(uint64_t n) {
  std::vector<std::vector<uint8_t>> out;
  out.reserve(n);
  for (uint64_t i = 0; i < n; ++i) out.push_back(Payload(i));
  return out;
}

// ---------------------------------------------------------------------------
// Clean-link basics.

TEST(ServerChannelTest, InOrderDeliveryOnCleanLink) {
  ChannelProducer::Options opts;
  opts.window = 4;
  ChannelProducer producer(7, opts);
  ChannelConsumer consumer(7);
  std::vector<std::vector<uint8_t>> delivered;

  constexpr uint64_t kFrames = 10;
  uint64_t pushed = 0;
  while (!producer.complete()) {
    while (pushed < kFrames && producer.CanPush()) {
      ASSERT_TRUE(producer.Push(Payload(pushed), pushed + 1 == kFrames).ok());
      ++pushed;
    }
    for (const DataFrame& frame : producer.PollSend()) {
      EXPECT_EQ(frame.channel, 7u);
      consumer.OnData(frame);
    }
    for (auto& p : consumer.TakeDelivered()) delivered.push_back(std::move(p));
    producer.OnAck(consumer.MakeAck());
    producer.Tick();
  }
  EXPECT_TRUE(consumer.finished());
  EXPECT_EQ(delivered, ExpectedPayloads(kFrames));
  EXPECT_EQ(producer.stats().pushed, kFrames);
  EXPECT_EQ(producer.stats().transmissions, kFrames);  // no retransmits
  EXPECT_EQ(producer.stats().timeout_retransmits, 0u);
  EXPECT_EQ(producer.stats().nack_retransmits, 0u);
  EXPECT_EQ(consumer.stats().duplicates, 0u);
}

TEST(ServerChannelTest, WindowFullIsBackpressureNotFailure) {
  ChannelProducer::Options opts;
  opts.window = 3;
  ChannelProducer producer(1, opts);

  for (uint64_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(producer.CanPush());
    ASSERT_TRUE(producer.Push(Payload(i), false).ok());
  }
  EXPECT_FALSE(producer.CanPush());
  util::Status refused = producer.Push(Payload(3), false);
  EXPECT_FALSE(refused.ok());
  EXPECT_NE(refused.message().find("window full"), std::string::npos);
  // Refusal must not consume a sequence number or poison the channel.
  EXPECT_EQ(producer.next_seq(), 3u);
  EXPECT_FALSE(producer.failed());

  // Acking frame 0 reopens exactly one slot.
  ChannelConsumer consumer(1);
  std::vector<DataFrame> frames = producer.PollSend();
  ASSERT_EQ(frames.size(), 3u);
  consumer.OnData(frames[0]);
  producer.OnAck(consumer.MakeAck());
  EXPECT_TRUE(producer.CanPush());
  EXPECT_TRUE(producer.Push(Payload(3), false).ok());
  EXPECT_FALSE(producer.CanPush());
}

TEST(ServerChannelTest, PushAfterFinalRefused) {
  ChannelProducer producer(2, ChannelProducer::Options{});
  ASSERT_TRUE(producer.Push(Payload(0), true).ok());
  util::Status refused = producer.Push(Payload(1), false);
  EXPECT_FALSE(refused.ok());
  EXPECT_NE(refused.message().find("after final"), std::string::npos);
  EXPECT_FALSE(producer.failed());
}

TEST(ServerChannelTest, DuplicateDeliveryIsIdempotent) {
  ChannelProducer producer(3, ChannelProducer::Options{});
  ChannelConsumer consumer(3);
  ASSERT_TRUE(producer.Push(Payload(0), false).ok());
  ASSERT_TRUE(producer.Push(Payload(1), true).ok());
  std::vector<DataFrame> frames = producer.PollSend();
  ASSERT_EQ(frames.size(), 2u);

  // Each frame delivered five times, second one first.
  for (int round = 0; round < 5; ++round) {
    consumer.OnData(frames[1]);
    consumer.OnData(frames[0]);
  }
  EXPECT_EQ(consumer.TakeDelivered(), ExpectedPayloads(2));
  EXPECT_TRUE(consumer.finished());
  EXPECT_EQ(consumer.stats().delivered, 2u);
  EXPECT_EQ(consumer.stats().duplicates, 8u);
  // A later duplicate after delivery is also dropped.
  consumer.OnData(frames[0]);
  EXPECT_TRUE(consumer.TakeDelivered().empty());
  EXPECT_EQ(consumer.stats().duplicates, 9u);
}

TEST(ServerChannelTest, RetransmitBudgetExhaustionFailsChannel) {
  ChannelProducer::Options opts;
  opts.window = 2;
  opts.retransmit_ticks = 1;
  opts.max_retransmits_per_frame = 5;
  ChannelProducer producer(4, opts);
  ASSERT_TRUE(producer.Push(Payload(0), false).ok());

  // The peer never acks: every tick re-offers the frame until the budget
  // runs out and the channel reports a descriptive failure.
  int rounds = 0;
  while (!producer.failed() && rounds < 100) {
    producer.PollSend();
    producer.Tick();
    ++rounds;
  }
  ASSERT_TRUE(producer.failed());
  EXPECT_NE(producer.error().message().find("unacknowledged"),
            std::string::npos);
  EXPECT_NE(producer.error().message().find("seq 0"), std::string::npos);
  // A failed channel refuses further work without crashing.
  EXPECT_FALSE(producer.CanPush());
  EXPECT_FALSE(producer.Push(Payload(1), false).ok());
  EXPECT_TRUE(producer.PollSend().empty());
}

TEST(ServerChannelTest, NackRetransmitsSpendTheSameBudget) {
  ChannelProducer::Options opts;
  opts.window = 4;
  opts.retransmit_ticks = 1000;  // timeouts never fire: only fast retransmits
  opts.max_retransmits_per_frame = 5;
  ChannelProducer producer(9, opts);
  ChannelConsumer consumer(9);
  ASSERT_TRUE(producer.Push(Payload(0), false).ok());
  ASSERT_TRUE(producer.Push(Payload(1), false).ok());
  std::vector<DataFrame> frames = producer.PollSend();
  ASSERT_EQ(frames.size(), 2u);
  // Seq 0 is persistently lost; seq 1 arrives and keeps reporting the gap.
  consumer.OnData(frames[1]);

  // Each ack schedules one fast retransmit of seq 0, which is "lost" again.
  // The per-frame budget must end this instead of retransmitting forever.
  int rounds = 0;
  while (!producer.failed() && rounds < 100) {
    producer.OnAck(consumer.MakeAck());
    producer.PollSend();
    ++rounds;
  }
  ASSERT_TRUE(producer.failed());
  EXPECT_NE(producer.error().message().find("seq 0"), std::string::npos);
  EXPECT_EQ(producer.stats().nack_retransmits, 5u);
  EXPECT_EQ(producer.stats().timeout_retransmits, 0u);
}

TEST(ServerChannelTest, StaleAcksAreCountedNotHarmful) {
  ChannelProducer producer(5, ChannelProducer::Options{});
  ChannelConsumer consumer(5);
  ASSERT_TRUE(producer.Push(Payload(0), true).ok());
  for (const DataFrame& f : producer.PollSend()) consumer.OnData(f);
  AckFrame ack = consumer.MakeAck();
  producer.OnAck(ack);
  EXPECT_TRUE(producer.complete());
  producer.OnAck(ack);
  producer.OnAck(ack);
  EXPECT_TRUE(producer.complete());
  EXPECT_EQ(producer.stats().stale_acks, 2u);
}

// ---------------------------------------------------------------------------
// Seeded adversarial schedules.
//
// The link holds frames and acks in queues; each pump step the schedule
// decides per message: drop it, duplicate it, or deliver it — and delivery
// order is a random permutation of the queue. Acks are lossy too.

struct AdversarialLink {
  double drop = 0.0;
  double duplicate = 0.0;
  util::Rng rng;

  std::deque<DataFrame> data;
  std::deque<AckFrame> acks;

  explicit AdversarialLink(uint64_t seed) : rng(seed) {}

  void Offer(std::vector<DataFrame> frames) {
    for (DataFrame& f : frames) {
      if (rng.Bernoulli(drop)) continue;
      if (rng.Bernoulli(duplicate)) data.push_back(f);
      data.push_back(std::move(f));
    }
  }

  void Offer(const AckFrame& ack) {
    if (rng.Bernoulli(drop)) return;
    if (rng.Bernoulli(duplicate)) acks.push_back(ack);
    acks.push_back(ack);
  }

  std::vector<DataFrame> DrainDataShuffled() {
    std::vector<DataFrame> out(std::make_move_iterator(data.begin()),
                               std::make_move_iterator(data.end()));
    data.clear();
    std::vector<size_t> perm = rng.Permutation(out.size());
    std::vector<DataFrame> shuffled;
    shuffled.reserve(out.size());
    for (size_t i : perm) shuffled.push_back(std::move(out[i]));
    return shuffled;
  }

  std::vector<AckFrame> DrainAcks() {
    std::vector<AckFrame> out(acks.begin(), acks.end());
    acks.clear();
    return out;
  }
};

struct ScheduleResult {
  bool finished = false;
  std::vector<std::vector<uint8_t>> delivered;
  ChannelProducer::Stats producer_stats;
  ChannelConsumer::Stats consumer_stats;
};

ScheduleResult RunSchedule(uint64_t seed, uint64_t frames, double drop,
                           double duplicate, bool selective_acks) {
  ChannelProducer::Options opts;
  opts.window = 4;
  opts.retransmit_ticks = 2;
  opts.max_retransmits_per_frame = 10000;  // the schedule must converge
  ChannelProducer producer(seed, opts);
  ChannelConsumer consumer(seed);
  AdversarialLink link(seed * 2654435761u + 1);
  link.drop = drop;
  link.duplicate = duplicate;

  ScheduleResult result;
  uint64_t pushed = 0;
  // Loss probability < 1 means every frame eventually gets through; the
  // iteration bound only guards against a protocol livelock bug.
  for (int step = 0; step < 200000 && !producer.complete(); ++step) {
    while (pushed < frames && producer.CanPush()) {
      EXPECT_TRUE(producer.Push(Payload(pushed), pushed + 1 == frames).ok());
      ++pushed;
    }
    link.Offer(producer.PollSend());
    for (const DataFrame& f : link.DrainDataShuffled()) consumer.OnData(f);
    for (auto& p : consumer.TakeDelivered()) {
      result.delivered.push_back(std::move(p));
    }
    link.Offer(consumer.MakeAck(selective_acks));
    for (const AckFrame& a : link.DrainAcks()) producer.OnAck(a);
    producer.Tick();
  }
  EXPECT_TRUE(producer.complete()) << "seed " << seed << " did not converge";
  EXPECT_FALSE(producer.failed()) << producer.error().message();
  result.finished = consumer.finished();
  result.producer_stats = producer.stats();
  result.consumer_stats = consumer.stats();
  return result;
}

TEST(ServerChannelTest, HundredTwentySeededLossDupReorderSchedules) {
  constexpr uint64_t kFrames = 32;
  uint64_t total_retransmits = 0;
  for (uint64_t seed = 1; seed <= 120; ++seed) {
    ScheduleResult r = RunSchedule(seed, kFrames, /*drop=*/0.25,
                                   /*duplicate=*/0.15, /*selective=*/true);
    ASSERT_TRUE(r.finished) << "seed " << seed;
    ASSERT_EQ(r.delivered, ExpectedPayloads(kFrames)) << "seed " << seed;
    ASSERT_EQ(r.consumer_stats.delivered, kFrames) << "seed " << seed;
    total_retransmits += r.producer_stats.timeout_retransmits +
                         r.producer_stats.nack_retransmits;
  }
  // A 25% lossy link must actually have exercised the recovery machinery.
  EXPECT_GT(total_retransmits, 0u);
}

TEST(ServerChannelTest, ScheduleReplayIsDeterministic) {
  for (uint64_t seed : {3u, 57u, 99u}) {
    ScheduleResult a = RunSchedule(seed, 24, 0.3, 0.2, true);
    ScheduleResult b = RunSchedule(seed, 24, 0.3, 0.2, true);
    EXPECT_EQ(a.delivered, b.delivered);
    EXPECT_EQ(a.producer_stats.transmissions, b.producer_stats.transmissions);
    EXPECT_EQ(a.producer_stats.timeout_retransmits,
              b.producer_stats.timeout_retransmits);
    EXPECT_EQ(a.producer_stats.nack_retransmits,
              b.producer_stats.nack_retransmits);
    EXPECT_EQ(a.consumer_stats.duplicates, b.consumer_stats.duplicates);
  }
}

TEST(ServerChannelTest, CumulativeOnlyAcksDeliverTheSameStream) {
  constexpr uint64_t kFrames = 24;
  for (uint64_t seed = 200; seed < 230; ++seed) {
    ScheduleResult sel = RunSchedule(seed, kFrames, 0.25, 0.1, true);
    ScheduleResult cum = RunSchedule(seed, kFrames, 0.25, 0.1, false);
    ASSERT_TRUE(sel.finished && cum.finished) << "seed " << seed;
    // Identical delivered bytes either way — SACKs only change recovery
    // latency, never the contract.
    ASSERT_EQ(sel.delivered, cum.delivered) << "seed " << seed;
    ASSERT_EQ(cum.producer_stats.nack_retransmits, 0u);
  }
}

TEST(ServerChannelTest, SackGapTriggersFastRetransmit) {
  ChannelProducer::Options opts;
  opts.window = 4;
  opts.retransmit_ticks = 100;  // timeouts effectively off
  ChannelProducer producer(6, opts);
  ChannelConsumer consumer(6);
  for (uint64_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(producer.Push(Payload(i), i == 2).ok());
  }
  std::vector<DataFrame> frames = producer.PollSend();
  ASSERT_EQ(frames.size(), 3u);
  // Frame 1 is lost; 0 and 2 arrive.
  consumer.OnData(frames[0]);
  consumer.OnData(frames[2]);
  AckFrame ack = consumer.MakeAck();
  EXPECT_EQ(ack.cumulative, 1u);
  ASSERT_EQ(ack.selective, std::vector<uint64_t>{2});

  producer.OnAck(ack);
  EXPECT_EQ(producer.stats().nack_retransmits, 1u);
  std::vector<DataFrame> resent = producer.PollSend();
  ASSERT_EQ(resent.size(), 1u);
  EXPECT_EQ(resent[0].seq, 1u);
  consumer.OnData(resent[0]);
  EXPECT_TRUE(consumer.finished());
  producer.OnAck(consumer.MakeAck());
  EXPECT_TRUE(producer.complete());
  EXPECT_EQ(producer.stats().timeout_retransmits, 0u);
}

TEST(ServerChannelTest, ByteBoundCapsRetransmitBufferMemory) {
  ChannelProducer::Options opts;
  opts.window = 1000;           // frame-count window out of the way
  opts.max_buffered_bytes = 20; // bound hit after three 8-byte payloads
  ChannelProducer producer(9, opts);

  // A silent consumer never acks, so Push stops at the byte bound even
  // though the frame window has room for hundreds more.
  uint64_t pushed = 0;
  while (producer.CanPush()) {
    ASSERT_TRUE(producer.Push(Payload(pushed), false).ok());
    ++pushed;
  }
  EXPECT_EQ(pushed, 3u);  // 24 bytes buffered >= 20-byte bound
  EXPECT_EQ(producer.stats().buffered_bytes, 24u);
  EXPECT_EQ(producer.stats().peak_buffered_bytes, 24u);
  util::Status refused = producer.Push(Payload(pushed), false);
  EXPECT_FALSE(refused.ok());           // backpressure, not failure
  EXPECT_FALSE(producer.failed());

  // Acks release buffered bytes and reopen the window.
  ChannelConsumer consumer(9);
  for (const DataFrame& frame : producer.PollSend()) consumer.OnData(frame);
  consumer.TakeDelivered();
  producer.OnAck(consumer.MakeAck());
  EXPECT_EQ(producer.stats().buffered_bytes, 0u);
  EXPECT_EQ(producer.stats().peak_buffered_bytes, 24u);
  EXPECT_TRUE(producer.CanPush());
}

TEST(ServerChannelTest, ReplayUnackedReoffersWithoutSpendingBudget) {
  ChannelProducer::Options opts;
  opts.window = 8;
  opts.retransmit_ticks = 1000;       // timeouts effectively off
  opts.max_retransmits_per_frame = 1; // any budget spend would fail fast
  ChannelProducer producer(4, opts);
  ChannelConsumer consumer(4);

  for (uint64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(producer.Push(Payload(i), i == 3).ok());
  }
  std::vector<DataFrame> first = producer.PollSend();
  ASSERT_EQ(first.size(), 4u);
  // The consumer saw frames 0 and 1 before its connection dropped; the ack
  // for them arrived, frames 2 and 3 evaporated with the socket.
  consumer.OnData(first[0]);
  consumer.OnData(first[1]);
  consumer.TakeDelivered();
  producer.OnAck(consumer.MakeAck());

  // Quiescent producer: nothing is due, nothing is sent.
  ASSERT_TRUE(producer.PollSend().empty());

  // Resume replay: exactly the unacked suffix is re-offered, counted as
  // resume_replays, and the per-frame retransmit budget is untouched (a
  // budget of 1 would otherwise fail the channel below).
  producer.ReplayUnacked();
  std::vector<DataFrame> replayed = producer.PollSend();
  ASSERT_EQ(replayed.size(), 2u);
  EXPECT_EQ(replayed[0].seq, 2u);
  EXPECT_EQ(replayed[1].seq, 3u);
  EXPECT_EQ(producer.stats().resume_replays, 2u);
  EXPECT_FALSE(producer.failed());

  // A second replay (client reconnected twice) still spends no budget.
  producer.ReplayUnacked();
  std::vector<DataFrame> again = producer.PollSend();
  ASSERT_EQ(again.size(), 2u);
  EXPECT_EQ(producer.stats().resume_replays, 4u);
  EXPECT_FALSE(producer.failed());

  // Duplicates from the double replay are dropped by consumer dedup and the
  // stream still finishes bit-identically.
  for (const DataFrame& frame : replayed) consumer.OnData(frame);
  for (const DataFrame& frame : again) consumer.OnData(frame);
  EXPECT_EQ(consumer.stats().duplicates, 2u);
  EXPECT_TRUE(consumer.finished());
  std::vector<std::vector<uint8_t>> tail = consumer.TakeDelivered();
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail[0], Payload(2));
  EXPECT_EQ(tail[1], Payload(3));
  producer.OnAck(consumer.MakeAck());
  EXPECT_TRUE(producer.complete());
  EXPECT_EQ(producer.stats().timeout_retransmits, 0u);
  EXPECT_EQ(producer.stats().nack_retransmits, 0u);
}

// ---------------------------------------------------------------------------
// Wire codec.

TEST(ServerWireTest, ClientMessageRoundTrips) {
  ClientMessage open;
  open.kind = ClientMessageKind::kOpenSession;
  open.model_name = "taxi";
  open.initial_samples = 400;
  open.max_samples = 6400;
  open.population_rows = 4000;
  open.seed = 2027;

  ClientMessage query;
  query.kind = ClientMessageKind::kQuery;
  query.session = 12;
  query.sql = "SELECT AVG(fare) FROM t WHERE passengers > 2";
  query.max_relative_ci = 0.05;

  ClientMessage ack;
  ack.kind = ClientMessageKind::kAck;
  ack.session = 12;
  ack.ack.channel = 3;
  ack.ack.cumulative = 7;
  ack.ack.selective = {9, 11};

  ClientMessage close;
  close.kind = ClientMessageKind::kCloseSession;
  close.session = 12;

  for (const ClientMessage& msg : {open, query, ack, close}) {
    auto decoded = DecodeClientMessage(EncodeClientMessage(msg));
    ASSERT_TRUE(decoded.ok()) << decoded.status().message();
    EXPECT_EQ(decoded->kind, msg.kind);
    EXPECT_EQ(decoded->model_name, msg.model_name);
    EXPECT_EQ(decoded->initial_samples, msg.initial_samples);
    EXPECT_EQ(decoded->max_samples, msg.max_samples);
    EXPECT_EQ(decoded->population_rows, msg.population_rows);
    EXPECT_EQ(decoded->seed, msg.seed);
    EXPECT_EQ(decoded->session, msg.session);
    EXPECT_EQ(decoded->sql, msg.sql);
    EXPECT_EQ(decoded->max_relative_ci, msg.max_relative_ci);
    EXPECT_EQ(decoded->ack.channel, msg.ack.channel);
    EXPECT_EQ(decoded->ack.cumulative, msg.ack.cumulative);
    EXPECT_EQ(decoded->ack.selective, msg.ack.selective);
  }
}

TEST(ServerWireTest, ServerMessageRoundTrips) {
  ServerMessage data;
  data.kind = ServerMessageKind::kData;
  data.session = 4;
  data.channel = 9;
  data.data.channel = 9;
  data.data.seq = 2;
  data.data.final = true;
  data.data.payload = {1, 2, 3, 250};

  ServerMessage error;
  error.kind = ServerMessageKind::kError;
  error.session = 4;
  error.channel = 9;
  error.code = 3;
  error.message = "bad query";

  ServerMessage started;
  started.kind = ServerMessageKind::kQueryStarted;
  started.session = 4;
  started.channel = 9;

  for (const ServerMessage& msg : {data, error, started}) {
    auto decoded = DecodeServerMessage(EncodeServerMessage(msg));
    ASSERT_TRUE(decoded.ok()) << decoded.status().message();
    EXPECT_EQ(decoded->kind, msg.kind);
    EXPECT_EQ(decoded->session, msg.session);
    EXPECT_EQ(decoded->channel, msg.channel);
    EXPECT_EQ(decoded->data.seq, msg.data.seq);
    EXPECT_EQ(decoded->data.final, msg.data.final);
    EXPECT_EQ(decoded->data.payload, msg.data.payload);
    EXPECT_EQ(decoded->code, msg.code);
    EXPECT_EQ(decoded->message, msg.message);
  }
}

TEST(ServerWireTest, TruncationAndTrailingBytesAreErrors) {
  ClientMessage query;
  query.kind = ClientMessageKind::kQuery;
  query.session = 1;
  query.sql = "SELECT COUNT(*) FROM t";
  query.max_relative_ci = 0.1;
  std::vector<uint8_t> bytes = EncodeClientMessage(query);

  // Every strict prefix must fail cleanly (Status, not UB).
  for (size_t n = 0; n < bytes.size(); ++n) {
    std::vector<uint8_t> prefix(bytes.begin(), bytes.begin() + n);
    EXPECT_FALSE(DecodeClientMessage(prefix).ok()) << "prefix len " << n;
  }
  // Trailing garbage is rejected too.
  bytes.push_back(0xAB);
  EXPECT_FALSE(DecodeClientMessage(bytes).ok());

  EXPECT_FALSE(DecodeClientMessage({99}).ok());  // unknown kind
  EXPECT_FALSE(DecodeServerMessage({}).ok());
}

TEST(ServerWireTest, EstimateEncodingIsBitExact) {
  Estimate e;
  e.pool_rows = 800;
  e.result.groups = {{0, 10.5, 100, 0.5}, {1, -0.0, 5, 2.0}, {7, 3.25, 0, 0.0}};

  std::vector<uint8_t> a = EncodeEstimate(e);
  std::vector<uint8_t> b = EncodeEstimate(e);
  EXPECT_EQ(a, b);

  auto decoded = DecodeEstimate(a);
  ASSERT_TRUE(decoded.ok()) << decoded.status().message();
  EXPECT_EQ(decoded->pool_rows, e.pool_rows);
  ASSERT_EQ(decoded->result.groups.size(), e.result.groups.size());
  for (size_t i = 0; i < e.result.groups.size(); ++i) {
    EXPECT_EQ(decoded->result.groups[i].group, e.result.groups[i].group);
    EXPECT_EQ(decoded->result.groups[i].value, e.result.groups[i].value);
    EXPECT_EQ(decoded->result.groups[i].support, e.result.groups[i].support);
    EXPECT_EQ(decoded->result.groups[i].ci_half_width,
              e.result.groups[i].ci_half_width);
  }
  // Re-encoding the decode reproduces the bytes (doubles travel as raw
  // bits, so even -0.0 survives).
  EXPECT_EQ(EncodeEstimate(*decoded), a);

  for (size_t n = 0; n + 1 < a.size(); ++n) {
    std::vector<uint8_t> prefix(a.begin(), a.begin() + n);
    EXPECT_FALSE(DecodeEstimate(prefix).ok());
  }
}

TEST(ServerWireTest, FramedStreamRoundTripsAndRejectsOversize) {
  std::FILE* f = std::tmpfile();
  ASSERT_NE(f, nullptr);
  ServerMessage msg;
  msg.kind = ServerMessageKind::kQueryStarted;
  msg.session = 2;
  msg.channel = 5;
  ASSERT_TRUE(WriteFramed(f, EncodeServerMessage(msg)).ok());
  ASSERT_TRUE(WriteFramed(f, EncodeServerMessage(msg)).ok());
  std::rewind(f);
  for (int i = 0; i < 2; ++i) {
    auto body = ReadFramed(f);
    ASSERT_TRUE(body.ok()) << body.status().message();
    ASSERT_TRUE(body->has_value());
    auto decoded = DecodeServerMessage(**body);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->channel, 5u);
  }
  auto eof = ReadFramed(f);
  ASSERT_TRUE(eof.ok());
  EXPECT_FALSE(eof->has_value());  // clean EOF between messages
  std::fclose(f);

  // An oversized length prefix is rejected before allocation.
  std::FILE* g = std::tmpfile();
  ASSERT_NE(g, nullptr);
  const uint32_t huge = kMaxFrameBytes + 1;
  ASSERT_EQ(std::fwrite(&huge, sizeof(huge), 1, g), 1u);
  std::rewind(g);
  EXPECT_FALSE(ReadFramed(g).ok());
  std::fclose(g);

  // Truncation inside a message body is an error, not EOF.
  std::FILE* h = std::tmpfile();
  ASSERT_NE(h, nullptr);
  const uint32_t n = 16;
  ASSERT_EQ(std::fwrite(&n, sizeof(n), 1, h), 1u);
  const uint8_t partial[4] = {1, 2, 3, 4};
  ASSERT_EQ(std::fwrite(partial, 1, 4, h), 4u);
  std::rewind(h);
  EXPECT_FALSE(ReadFramed(h).ok());
  std::fclose(h);
}

}  // namespace
}  // namespace deepaqp::server
