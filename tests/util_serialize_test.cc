#include "util/serialize.h"

#include <cstdio>

#include <gtest/gtest.h>

namespace deepaqp::util {
namespace {

TEST(SerializeTest, RoundTripScalars) {
  ByteWriter w;
  w.WriteU8(7);
  w.WriteU32(0xDEADBEEF);
  w.WriteU64(1ull << 60);
  w.WriteI32(-12345);
  w.WriteI64(-(1ll << 50));
  w.WriteF32(3.25f);
  w.WriteF64(-2.5e-8);

  ByteReader r(w.bytes());
  EXPECT_EQ(*r.ReadU8(), 7);
  EXPECT_EQ(*r.ReadU32(), 0xDEADBEEF);
  EXPECT_EQ(*r.ReadU64(), 1ull << 60);
  EXPECT_EQ(*r.ReadI32(), -12345);
  EXPECT_EQ(*r.ReadI64(), -(1ll << 50));
  EXPECT_EQ(*r.ReadF32(), 3.25f);
  EXPECT_EQ(*r.ReadF64(), -2.5e-8);
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerializeTest, RoundTripStringAndVectors) {
  ByteWriter w;
  w.WriteString("hello world");
  w.WriteF32Vector({1.0f, -2.0f, 0.5f});
  w.WriteF64Vector({});
  w.WriteI32Vector({-1, 0, 1, 2});

  ByteReader r(w.bytes());
  EXPECT_EQ(*r.ReadString(), "hello world");
  auto f32 = *r.ReadF32Vector();
  ASSERT_EQ(f32.size(), 3u);
  EXPECT_EQ(f32[1], -2.0f);
  EXPECT_TRUE(r.ReadF64Vector()->empty());
  auto i32 = *r.ReadI32Vector();
  ASSERT_EQ(i32.size(), 4u);
  EXPECT_EQ(i32[0], -1);
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerializeTest, TruncationIsReported) {
  ByteWriter w;
  w.WriteU32(1);
  ByteReader r(w.bytes());
  EXPECT_TRUE(r.ReadU32().ok());
  auto bad = r.ReadU64();
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kOutOfRange);
}

TEST(SerializeTest, TruncatedVectorIsReported) {
  ByteWriter w;
  w.WriteU64(1000);  // Claims 1000 floats but provides none.
  ByteReader r(w.bytes());
  auto bad = r.ReadF32Vector();
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kOutOfRange);
}

TEST(SerializeTest, FileRoundTrip) {
  ByteWriter w;
  w.WriteString("persisted");
  w.WriteF64(42.0);
  const std::string path = testing::TempDir() + "/deepaqp_serialize_test.bin";
  ASSERT_TRUE(WriteFile(path, w.bytes()).ok());
  auto bytes = ReadFile(path);
  ASSERT_TRUE(bytes.ok());
  ByteReader r(*bytes);
  EXPECT_EQ(*r.ReadString(), "persisted");
  EXPECT_EQ(*r.ReadF64(), 42.0);
  std::remove(path.c_str());
}

TEST(SerializeTest, MissingFileIsIOError) {
  auto bytes = ReadFile("/nonexistent/deepaqp/file.bin");
  ASSERT_FALSE(bytes.ok());
  EXPECT_EQ(bytes.status().code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace deepaqp::util
