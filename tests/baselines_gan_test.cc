#include "baselines/gan.h"

#include <cmath>

#include <gtest/gtest.h>

#include "aqp/executor.h"
#include "aqp/metrics.h"
#include "data/generators.h"

namespace deepaqp::baselines {
namespace {

WganModel::Options FastOptions() {
  WganModel::Options opts;
  opts.epochs = 10;
  opts.hidden_dim = 48;
  opts.noise_dim = 16;
  opts.encoder.numeric_bins = 16;
  opts.seed = 3;
  return opts;
}

TEST(WganTest, RejectsEmptyTable) {
  relation::Schema s;
  ASSERT_TRUE(s.AddAttribute("x", relation::AttrType::kNumeric).ok());
  relation::Table empty(s);
  EXPECT_FALSE(WganModel::Train(empty, FastOptions()).ok());
}

TEST(WganTest, GeneratesValidSchemaAndDomains) {
  auto table = data::GenerateTaxi({.rows = 2000, .seed = 1});
  auto model = WganModel::Train(table, FastOptions());
  ASSERT_TRUE(model.ok());
  util::Rng rng(2);
  auto sample = (*model)->Generate(300, rng);
  EXPECT_EQ(sample.num_rows(), 300u);
  EXPECT_TRUE(sample.schema() == table.schema());
  for (size_t r = 0; r < sample.num_rows(); ++r) {
    EXPECT_GE(sample.CatCode(r, 0), 0);
    EXPECT_LT(sample.CatCode(r, 0), 5);
  }
}

TEST(WganTest, CriticSeparatesThenConverges) {
  auto table = data::GenerateTaxi({.rows = 3000, .seed = 4});
  WganModel::TrainDiagnostics diag;
  WganModel::Options opts = FastOptions();
  opts.epochs = 12;
  auto model = WganModel::Train(table, opts, &diag);
  ASSERT_TRUE(model.ok());
  ASSERT_EQ(diag.wasserstein.size(), 12u);
  // All estimates finite; the Wasserstein gap should not blow up.
  for (double w : diag.wasserstein) {
    EXPECT_TRUE(std::isfinite(w));
    EXPECT_LT(std::abs(w), 100.0);
  }
}

TEST(WganTest, LearnsCoarseMarginals) {
  auto table = data::GenerateTaxi({.rows = 5000, .seed = 5});
  WganModel::Options opts = FastOptions();
  opts.epochs = 25;
  auto model = WganModel::Train(table, opts);
  ASSERT_TRUE(model.ok());
  util::Rng rng(6);
  auto sample = (*model)->Generate(2000, rng);
  aqp::AggregateQuery q;
  q.agg = aqp::AggFunc::kAvg;
  q.measure_attr = table.schema().IndexOf("fare");
  const double truth = aqp::ExecuteExact(q, table)->Scalar();
  const double est = aqp::ExecuteExact(q, sample)->Scalar();
  // GANs are finicky (the paper makes the same observation); require the
  // mean to land within 60%.
  EXPECT_LT(aqp::RelativeError(est, truth), 0.6);
}

TEST(WganTest, SamplerInterface) {
  auto table = data::GenerateTaxi({.rows = 1000, .seed = 7});
  auto model = WganModel::Train(table, FastOptions());
  ASSERT_TRUE(model.ok());
  auto sampler = (*model)->MakeSampler();
  util::Rng rng(8);
  EXPECT_EQ(sampler(123, rng).num_rows(), 123u);
  EXPECT_GT((*model)->GeneratorParameters(), 100u);
}

}  // namespace
}  // namespace deepaqp::baselines
