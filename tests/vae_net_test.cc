#include "vae/vae_net.h"

#include "vae/vae_model.h"

#include <cmath>

#include <gtest/gtest.h>

namespace deepaqp::vae {
namespace {

using nn::Matrix;

VaeNetOptions SmallOptions() {
  VaeNetOptions opts;
  opts.input_dim = 8;
  opts.latent_dim = 4;
  opts.hidden_dim = 16;
  opts.depth = 2;
  opts.seed = 3;
  return opts;
}

/// Random binary batch drawn from a simple two-mode distribution.
Matrix TwoModeData(size_t n, util::Rng& rng) {
  Matrix x(n, 8);
  for (size_t r = 0; r < n; ++r) {
    const bool mode = rng.Bernoulli(0.5);
    for (size_t c = 0; c < 8; ++c) {
      // Mode 0: first half bits mostly on; mode 1: second half.
      const bool on_half = mode ? c >= 4 : c < 4;
      x.At(r, c) = rng.Bernoulli(on_half ? 0.9 : 0.1) ? 1.0f : 0.0f;
    }
  }
  return x;
}

TEST(VaeNetTest, ShapesAreConsistent) {
  VaeNet net(SmallOptions());
  util::Rng rng(1);
  Matrix x(5, 8);
  auto post = net.Encode(x);
  EXPECT_EQ(post.mu.rows(), 5u);
  EXPECT_EQ(post.mu.cols(), 4u);
  EXPECT_EQ(post.logvar.cols(), 4u);
  Matrix z = net.SamplePrior(7, rng);
  EXPECT_EQ(z.rows(), 7u);
  EXPECT_EQ(z.cols(), 4u);
  Matrix logits = net.DecodeLogits(z);
  EXPECT_EQ(logits.rows(), 7u);
  EXPECT_EQ(logits.cols(), 8u);
}

TEST(VaeNetTest, ReparameterizationMatchesFormula) {
  VaeNet::Posterior post;
  post.mu = Matrix(1, 2);
  post.logvar = Matrix(1, 2);
  post.mu.At(0, 0) = 1.0f;
  post.mu.At(0, 1) = -1.0f;
  post.logvar.At(0, 0) = 0.0f;     // sigma 1
  post.logvar.At(0, 1) = 2.0f;     // sigma e
  Matrix eps(1, 2);
  eps.At(0, 0) = 0.5f;
  eps.At(0, 1) = -0.5f;
  Matrix z = VaeNet::Reparameterize(post, eps);
  EXPECT_NEAR(z.At(0, 0), 1.5f, 1e-6);
  EXPECT_NEAR(z.At(0, 1), -1.0f - 0.5f * std::exp(1.0f), 1e-5);
}

TEST(VaeNetTest, TrainingReducesElboLoss) {
  VaeNet net(SmallOptions());
  util::Rng rng(7);
  Matrix data = TwoModeData(512, rng);
  nn::Adam opt(net.Parameters(), 5e-3f);
  util::Rng eval_rng(11);
  const double before = net.ElboLoss(data, eval_rng);
  TrainStepOptions step;
  for (int epoch = 0; epoch < 30; ++epoch) {
    for (size_t start = 0; start < data.rows(); start += 64) {
      std::vector<size_t> idx;
      for (size_t i = start; i < std::min<size_t>(start + 64, data.rows());
           ++i) {
        idx.push_back(i);
      }
      net.TrainStep(data.GatherRows(idx), opt, rng, step);
    }
  }
  util::Rng eval_rng2(11);
  const double after = net.ElboLoss(data, eval_rng2);
  EXPECT_LT(after, before - 0.5);
}

TEST(VaeNetTest, LogRatioRowsFiniteAndOrdered) {
  VaeNet net(SmallOptions());
  util::Rng rng(13);
  Matrix x = TwoModeData(16, rng);
  auto post = net.Encode(x);
  Matrix eps(16, 4);
  Matrix z = VaeNet::Reparameterize(post, eps);  // z = mu (eps = 0)
  Matrix ratio = net.LogRatioRows(x, post, z);
  ASSERT_EQ(ratio.rows(), 16u);
  for (size_t r = 0; r < ratio.rows(); ++r) {
    EXPECT_TRUE(std::isfinite(ratio.At(r, 0)));
  }
}

TEST(VaeNetTest, VrsTrainStepTracksAcceptance) {
  VaeNet net(SmallOptions());
  util::Rng rng(17);
  Matrix x = TwoModeData(64, rng);
  nn::Adam opt(net.Parameters(), 1e-3f);
  // Huge per-row T: everything accepted immediately.
  std::vector<float> t_hi(64, 1e9f);
  TrainStepOptions step;
  step.use_vrs = true;
  step.row_t = &t_hi;
  auto s = net.TrainStep(x, opt, rng, step);
  EXPECT_DOUBLE_EQ(s.acceptance, 1.0);
  ASSERT_EQ(s.log_ratio.size(), 64u);

  // Very low T: most draws rejected.
  std::vector<float> t_lo(64, -1e9f);
  step.row_t = &t_lo;
  s = net.TrainStep(x, opt, rng, step);
  EXPECT_LT(s.acceptance, 0.05);
}

TEST(VaeNetTest, RElboLossNoWorseThanElboAfterTraining) {
  VaeNet net(SmallOptions());
  util::Rng rng(19);
  Matrix data = TwoModeData(256, rng);
  nn::Adam opt(net.Parameters(), 5e-3f);
  TrainStepOptions step;
  for (int epoch = 0; epoch < 15; ++epoch) {
    for (size_t start = 0; start < data.rows(); start += 64) {
      std::vector<size_t> idx;
      for (size_t i = start; i < std::min<size_t>(start + 64, data.rows());
           ++i) {
        idx.push_back(i);
      }
      net.TrainStep(data.GatherRows(idx), opt, rng, step);
    }
  }
  // Average over several draws: resampling with a strict threshold keeps
  // better posterior samples, so the R-ELBO loss should not be larger.
  double elbo = 0.0, relbo = 0.0;
  for (int i = 0; i < 10; ++i) {
    util::Rng r1(100 + i), r2(100 + i);
    elbo += net.RElboLoss(data, kTPlusInf, r1);
    relbo += net.RElboLoss(data, -2.0, r2, 5);
  }
  EXPECT_LE(relbo, elbo + 0.1);
}

TEST(VaeNetTest, SerializeRoundTripPreservesDecoder) {
  VaeNet net(SmallOptions());
  util::ByteWriter w;
  net.Serialize(w);
  util::ByteReader r(w.bytes());
  auto back = VaeNet::Deserialize(r);
  ASSERT_TRUE(back.ok());
  util::Rng rng(23);
  Matrix z = net.SamplePrior(4, rng);
  Matrix a = net.DecodeLogits(z);
  Matrix b = (*back)->DecodeLogits(z);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_FLOAT_EQ(a.data()[i], b.data()[i]);
  }
  EXPECT_EQ((*back)->NumParameters(), net.NumParameters());
}

TEST(VaeNetTest, NumParametersMatchesArchitecture) {
  VaeNetOptions opts = SmallOptions();
  VaeNet net(opts);
  // encoder: 8*16+16 + 16*16+16 ; heads: 2*(16*4+4) ;
  // decoder: 4*16+16 + 16*16+16 + 16*8+8.
  const size_t expect = (8 * 16 + 16) + (16 * 16 + 16) + 2 * (16 * 4 + 4) +
                        (4 * 16 + 16) + (16 * 16 + 16) + (16 * 8 + 8);
  EXPECT_EQ(net.NumParameters(), expect);
}

}  // namespace
}  // namespace deepaqp::vae
