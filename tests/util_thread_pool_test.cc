#include "util/thread_pool.h"

#include "util/flags.h"

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace deepaqp::util {
namespace {

TEST(ThreadPoolTest, StartupAndShutdownDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(4);
    EXPECT_EQ(pool.num_threads(), 4);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&ran] { ran.fetch_add(1); });
    }
  }  // destructor drains the queue before joining
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPoolTest, SerialPoolRunsTasksInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1);
  int ran = 0;
  pool.Submit([&ran] { ++ran; });
  EXPECT_EQ(ran, 1);  // no workers: Submit executes before returning
}

TEST(ThreadPoolTest, ParallelismBelowOneClampsToOne) {
  ThreadPool pool(-3);
  EXPECT_EQ(pool.num_threads(), 1);
}

TEST(ThreadPoolTest, ParallelForEmptyRange) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  pool.ParallelFor(0, 0, [&](size_t) { ran.fetch_add(1); });
  pool.ParallelFor(5, 5, [&](size_t) { ran.fetch_add(1); });
  pool.ParallelFor(7, 3, [&](size_t) { ran.fetch_add(1); });  // inverted
  EXPECT_EQ(ran.load(), 0);
}

TEST(ThreadPoolTest, ParallelForSingleIndex) {
  ThreadPool pool(4);
  std::vector<int> hits(1, 0);
  pool.ParallelFor(0, 1, [&](size_t i) { ++hits[i]; });
  EXPECT_EQ(hits[0], 1);
}

TEST(ThreadPoolTest, ParallelForOddRangeCoversEveryIndexOnce) {
  ThreadPool pool(3);
  const size_t n = 1237;  // odd, not a multiple of the lane count
  std::vector<std::atomic<int>> hits(n);
  pool.ParallelFor(10, 10 + n, [&](size_t i) {
    hits[i - 10].fetch_add(1);
  });
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPoolTest, ParallelForMoreIndicesThanThreads) {
  ThreadPool pool(8);
  std::vector<double> out(10000, 0.0);
  pool.ParallelFor(0, out.size(), [&](size_t i) {
    out[i] = static_cast<double>(i) * 2.0;
  });
  double sum = std::accumulate(out.begin(), out.end(), 0.0);
  EXPECT_DOUBLE_EQ(sum, 9999.0 * 10000.0);
}

TEST(ThreadPoolTest, ExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(0, 100,
                       [](size_t i) {
                         if (i == 37) throw std::runtime_error("task 37");
                       }),
      std::runtime_error);
  // The pool survives and stays usable after a throwing region.
  std::atomic<int> ran{0};
  pool.ParallelFor(0, 16, [&](size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 16);
}

TEST(ThreadPoolTest, ExceptionOnSerialPoolPropagates) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.ParallelFor(0, 4,
                                [](size_t i) {
                                  if (i == 2) throw std::logic_error("x");
                                }),
               std::logic_error);
}

TEST(ThreadPoolTest, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(64);
  pool.ParallelFor(0, 8, [&](size_t outer) {
    // Nested region: must complete inline on whichever lane runs it.
    pool.ParallelFor(0, 8, [&](size_t inner) {
      hits[outer * 8 + inner].fetch_add(1);
    });
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, SubmitFromInsideTaskIsSafe) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(4);
    std::atomic<int> outer_done{0};
    pool.ParallelFor(0, 8, [&](size_t) {
      pool.Submit([&ran] { ran.fetch_add(1); });
      outer_done.fetch_add(1);
    });
    EXPECT_EQ(outer_done.load(), 8);
  }  // destructor drains the nested submissions
  EXPECT_EQ(ran.load(), 8);
}

TEST(ThreadPoolTest, GlobalPoolResize) {
  SetGlobalThreads(3);
  EXPECT_EQ(GlobalThreads(), 3);
  std::atomic<int> ran{0};
  ParallelFor(0, 10, [&](size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 10);
  SetGlobalThreads(0);  // back to hardware concurrency
  EXPECT_GE(GlobalThreads(), 1);
}

TEST(ThreadPoolTest, ThreadsFlagAppliesToGlobalPool) {
  const char* argv[] = {"prog", "--threads=2"};
  Flags flags(2, const_cast<char**>(argv));
  ApplyThreadsFlag(flags);
  EXPECT_EQ(GlobalThreads(), 2);
  SetGlobalThreads(0);
}

}  // namespace
}  // namespace deepaqp::util
