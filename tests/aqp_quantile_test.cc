#include <cmath>

#include <gtest/gtest.h>

#include "aqp/estimator.h"
#include "aqp/executor.h"
#include "aqp/metrics.h"
#include "data/generators.h"

namespace deepaqp::aqp {
namespace {

using relation::AttrType;
using relation::Datum;
using relation::Schema;
using relation::Table;

Table ValuesTable(const std::vector<double>& values) {
  Schema s;
  EXPECT_TRUE(s.AddAttribute("g", AttrType::kCategorical).ok());
  EXPECT_TRUE(s.AddAttribute("v", AttrType::kNumeric).ok());
  Table t(s);
  for (double v : values) {
    t.AppendRow({Datum::Categorical(0), Datum::Numeric(v)});
  }
  return t;
}

TEST(EmpiricalQuantileTest, MatchesHandValues) {
  EXPECT_DOUBLE_EQ(EmpiricalQuantile({1, 2, 3, 4, 5}, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(EmpiricalQuantile({5, 1, 3, 2, 4}, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(EmpiricalQuantile({5, 1, 3, 2, 4}, 1.0), 5.0);
  // Interpolation: q=0.25 of {1..4} -> 1.75.
  EXPECT_DOUBLE_EQ(EmpiricalQuantile({1, 2, 3, 4}, 0.25), 1.75);
  EXPECT_DOUBLE_EQ(EmpiricalQuantile({7}, 0.3), 7.0);
}

TEST(QuantileExecutorTest, ExactMedian) {
  Table t = ValuesTable({9, 1, 5, 3, 7});
  AggregateQuery q;
  q.agg = AggFunc::kQuantile;
  q.measure_attr = 1;
  q.quantile = 0.5;
  auto r = ExecuteExact(q, t);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->Scalar(), 5.0);
}

TEST(QuantileExecutorTest, ExactQuantileWithFilter) {
  Table t = ValuesTable({1, 2, 3, 4, 5, 6, 7, 8, 9, 10});
  AggregateQuery q;
  q.agg = AggFunc::kQuantile;
  q.measure_attr = 1;
  q.quantile = 0.9;
  q.filter.conditions.push_back({1, CmpOp::kLe, 8.0});  // values 1..8
  auto r = ExecuteExact(q, t);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->Scalar(), 7.3, 1e-9);  // 0.9 * 7 = 6.3 -> 7.3 interp
}

TEST(QuantileExecutorTest, GroupByQuantile) {
  Schema s;
  ASSERT_TRUE(s.AddAttribute("g", AttrType::kCategorical).ok());
  ASSERT_TRUE(s.AddAttribute("v", AttrType::kNumeric).ok());
  Table t(s);
  for (int i = 1; i <= 5; ++i) {
    t.AppendRow({Datum::Categorical(0), Datum::Numeric(i)});
    t.AppendRow({Datum::Categorical(1), Datum::Numeric(i * 100)});
  }
  AggregateQuery q;
  q.agg = AggFunc::kQuantile;
  q.measure_attr = 1;
  q.quantile = 0.5;
  q.group_by_attr = 0;
  auto r = ExecuteExact(q, t);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->Find(0)->value, 3.0);
  EXPECT_DOUBLE_EQ(r->Find(1)->value, 300.0);
}

TEST(QuantileExecutorTest, RejectsBadLevels) {
  Table t = ValuesTable({1, 2, 3});
  AggregateQuery q;
  q.agg = AggFunc::kQuantile;
  q.measure_attr = 1;
  q.quantile = 0.0;
  EXPECT_FALSE(ExecuteExact(q, t).ok());
  q.quantile = 1.0;
  EXPECT_FALSE(ExecuteExact(q, t).ok());
  q.quantile = 0.5;
  q.measure_attr = 0;  // categorical measure
  EXPECT_FALSE(ExecuteExact(q, t).ok());
}

TEST(QuantileExecutorTest, EmptySelectionHasNoGroups) {
  Table t = ValuesTable({1, 2, 3});
  AggregateQuery q;
  q.agg = AggFunc::kQuantile;
  q.measure_attr = 1;
  q.filter.conditions.push_back({1, CmpOp::kGt, 100.0});
  auto r = ExecuteExact(q, t);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->groups.empty());
}

TEST(QuantileEstimatorTest, SampleQuantileConvergesToTruth) {
  auto table = data::GenerateCensus({.rows = 20000, .seed = 21});
  AggregateQuery q;
  q.agg = AggFunc::kQuantile;
  q.measure_attr = table.schema().IndexOf("age");
  q.quantile = 0.5;
  const double truth = ExecuteExact(q, table)->Scalar();
  util::Rng rng(4);
  double err_small = 0, err_large = 0;
  for (int t = 0; t < 15; ++t) {
    auto s1 = table.SampleRows(100, rng);
    auto s2 = table.SampleRows(4000, rng);
    err_small += RelativeError(
        EstimateFromSample(q, s1, table.num_rows())->Scalar(), truth);
    err_large += RelativeError(
        EstimateFromSample(q, s2, table.num_rows())->Scalar(), truth);
  }
  EXPECT_LT(err_large, err_small + 1e-12);
  EXPECT_LT(err_large / 15, 0.05);
}

TEST(QuantileEstimatorTest, OrderStatisticCiCoversTruth) {
  auto table = data::GenerateCensus({.rows = 20000, .seed = 22});
  AggregateQuery q;
  q.agg = AggFunc::kQuantile;
  q.measure_attr = table.schema().IndexOf("hours_per_week");
  q.quantile = 0.75;
  const double truth = ExecuteExact(q, table)->Scalar();
  util::Rng rng(5);
  int covered = 0;
  const int trials = 60;
  for (int t = 0; t < trials; ++t) {
    auto s = table.SampleRows(500, rng);
    auto est = EstimateFromSample(q, s, table.num_rows());
    ASSERT_TRUE(est.ok());
    const auto& g = est->groups[0];
    if (std::abs(g.value - truth) <= g.ci_half_width + 1e-9) ++covered;
  }
  // Discrete-valued column makes the interval conservative; expect high
  // coverage.
  EXPECT_GE(covered, 48);
}

}  // namespace
}  // namespace deepaqp::aqp
