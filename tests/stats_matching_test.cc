#include "stats/matching.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace deepaqp::stats {
namespace {

void ExpectValidMatching(const std::vector<int>& mate) {
  for (size_t i = 0; i < mate.size(); ++i) {
    ASSERT_GE(mate[i], 0);
    ASSERT_LT(static_cast<size_t>(mate[i]), mate.size());
    EXPECT_NE(static_cast<size_t>(mate[i]), i);
    EXPECT_EQ(static_cast<size_t>(mate[mate[i]]), i);
  }
}

DistanceMatrix RandomEuclideanInstance(size_t n, size_t dim,
                                       uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::vector<double>> points(n, std::vector<double>(dim));
  for (auto& p : points) {
    for (double& v : p) v = rng.Gaussian(0, 1);
  }
  return EuclideanDistances(points);
}

TEST(MatchingTest, RejectsOddOrEmptyInput) {
  EXPECT_FALSE(MinWeightPerfectMatching({}).ok());
  DistanceMatrix odd(3, std::vector<double>(3, 1.0));
  EXPECT_FALSE(MinWeightPerfectMatching(odd).ok());
  DistanceMatrix ragged = {{0, 1}, {1}};
  EXPECT_FALSE(MinWeightPerfectMatching(ragged).ok());
}

TEST(MatchingTest, TrivialTwoNodes) {
  DistanceMatrix d = {{0, 5}, {5, 0}};
  auto mate = MinWeightPerfectMatching(d);
  ASSERT_TRUE(mate.ok());
  EXPECT_EQ((*mate)[0], 1);
  EXPECT_EQ((*mate)[1], 0);
  EXPECT_DOUBLE_EQ(MatchingWeight(d, *mate), 5.0);
}

TEST(MatchingTest, FourNodeKnownOptimum) {
  // Nodes on a line at 0, 1, 10, 11: optimal pairs (0,1) and (2,3).
  std::vector<std::vector<double>> pts = {{0}, {1}, {10}, {11}};
  DistanceMatrix d = EuclideanDistances(pts);
  auto mate = MinWeightPerfectMatching(d);
  ASSERT_TRUE(mate.ok());
  EXPECT_EQ((*mate)[0], 1);
  EXPECT_EQ((*mate)[2], 3);
  EXPECT_DOUBLE_EQ(MatchingWeight(d, *mate), 2.0);
}

TEST(MatchingTest, GreedyTrapIsEscapedByTwoOpt) {
  // Classic greedy trap: greedy picks the globally cheapest edge (b, c),
  // forcing the expensive (a, d). 2-opt must recover (a,b),(c,d).
  //   a --1.1-- b --1.0-- c --1.1-- d,  a--d = 10
  DistanceMatrix d = {
      {0.0, 1.1, 5.0, 10.0},
      {1.1, 0.0, 1.0, 5.0},
      {5.0, 1.0, 0.0, 1.1},
      {10.0, 5.0, 1.1, 0.0},
  };
  auto mate = MinWeightPerfectMatching(d);
  ASSERT_TRUE(mate.ok());
  EXPECT_DOUBLE_EQ(MatchingWeight(d, *mate), 2.2);
}

TEST(MatchingTest, ExactSolverMatchesByHand) {
  std::vector<std::vector<double>> pts = {{0}, {1}, {10}, {11}, {20}, {21}};
  DistanceMatrix d = EuclideanDistances(pts);
  auto mate = ExactMinWeightPerfectMatching(d);
  ASSERT_TRUE(mate.ok());
  ExpectValidMatching(*mate);
  EXPECT_DOUBLE_EQ(MatchingWeight(d, *mate), 3.0);
}

TEST(MatchingTest, ExactSolverRejectsLargeInstances) {
  DistanceMatrix d(24, std::vector<double>(24, 1.0));
  EXPECT_FALSE(ExactMinWeightPerfectMatching(d).ok());
}

TEST(MatchingTest, HeuristicNearOptimalOnRandomInstances) {
  // Property sweep: 2-opt heuristic within 5% of the exact DP on random
  // Euclidean instances up to n = 14.
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    for (size_t n : {6, 10, 14}) {
      DistanceMatrix d = RandomEuclideanInstance(n, 2, seed * 100 + n);
      auto exact = ExactMinWeightPerfectMatching(d);
      auto heur = MinWeightPerfectMatching(d);
      ASSERT_TRUE(exact.ok());
      ASSERT_TRUE(heur.ok());
      ExpectValidMatching(*heur);
      const double w_exact = MatchingWeight(d, *exact);
      const double w_heur = MatchingWeight(d, *heur);
      EXPECT_GE(w_heur, w_exact - 1e-9);
      EXPECT_LE(w_heur, w_exact * 1.05 + 1e-9)
          << "seed " << seed << " n " << n;
    }
  }
}

TEST(MatchingTest, HeuristicIsDeterministic) {
  DistanceMatrix d = RandomEuclideanInstance(40, 3, 77);
  auto a = MinWeightPerfectMatching(d);
  auto b = MinWeightPerfectMatching(d);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
}

TEST(MatchingTest, LargeInstanceCompletesAndIsValid) {
  DistanceMatrix d = RandomEuclideanInstance(200, 4, 99);
  auto mate = MinWeightPerfectMatching(d);
  ASSERT_TRUE(mate.ok());
  ExpectValidMatching(*mate);
}

TEST(MatchingTest, EuclideanDistancesSymmetricWithZeroDiagonal) {
  std::vector<std::vector<double>> pts = {{0, 0}, {3, 4}, {-3, -4}};
  DistanceMatrix d = EuclideanDistances(pts);
  EXPECT_DOUBLE_EQ(d[0][1], 5.0);
  EXPECT_DOUBLE_EQ(d[1][0], 5.0);
  EXPECT_DOUBLE_EQ(d[1][2], 10.0);
  EXPECT_DOUBLE_EQ(d[0][0], 0.0);
}

}  // namespace
}  // namespace deepaqp::stats
