// Parameterized property suite for minimum-weight perfect matching: across
// instance sizes, dimensions, and metric structure, the 2/3-opt heuristic
// must produce valid matchings close to the exact DP optimum, and the
// cross-match statistic derived from any matching must be label-consistent.

#include <algorithm>
#include <cmath>
#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "stats/cross_match.h"
#include "stats/matching.h"
#include "util/rng.h"

namespace deepaqp::stats {
namespace {

using Param = std::tuple<int /*n*/, int /*dim*/, bool /*clustered*/>;

class MatchingPropertyTest : public ::testing::TestWithParam<Param> {
 protected:
  DistanceMatrix MakeInstance(uint64_t seed) const {
    const auto [n, dim, clustered] = GetParam();
    util::Rng rng(seed);
    std::vector<std::vector<double>> points(
        n, std::vector<double>(static_cast<size_t>(dim)));
    for (size_t i = 0; i < points.size(); ++i) {
      const double center =
          clustered ? (i % 2 == 0 ? -3.0 : 3.0) : 0.0;
      for (double& v : points[i]) v = rng.Gaussian(center, 1.0);
    }
    return EuclideanDistances(points);
  }
};

TEST_P(MatchingPropertyTest, HeuristicValidAndNearOptimal) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    DistanceMatrix d = MakeInstance(seed);
    auto heur = MinWeightPerfectMatching(d);
    ASSERT_TRUE(heur.ok());
    // Validity: an involution without fixed points.
    for (size_t i = 0; i < heur->size(); ++i) {
      ASSERT_NE((*heur)[i], static_cast<int>(i));
      ASSERT_EQ((*heur)[(*heur)[i]], static_cast<int>(i));
    }
    if (d.size() <= 14) {
      auto exact = ExactMinWeightPerfectMatching(d);
      ASSERT_TRUE(exact.ok());
      const double w_exact = MatchingWeight(d, *exact);
      const double w_heur = MatchingWeight(d, *heur);
      EXPECT_GE(w_heur, w_exact - 1e-9);
      EXPECT_LE(w_heur, w_exact * 1.05 + 1e-9) << "seed " << seed;
    }
  }
}

TEST_P(MatchingPropertyTest, WeightIsPermutationInvariant) {
  DistanceMatrix d = MakeInstance(42);
  auto mate = MinWeightPerfectMatching(d);
  ASSERT_TRUE(mate.ok());
  const double w1 = MatchingWeight(d, *mate);
  // Relabel nodes with a rotation; optimum weight must not change.
  const size_t n = d.size();
  DistanceMatrix rotated(n, std::vector<double>(n));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      rotated[(i + 1) % n][(j + 1) % n] = d[i][j];
    }
  }
  auto mate2 = MinWeightPerfectMatching(rotated);
  ASSERT_TRUE(mate2.ok());
  EXPECT_NEAR(MatchingWeight(rotated, *mate2), w1, std::max(1e-6, w1 * 0.02));
}

TEST_P(MatchingPropertyTest, CrossMatchCountsConsistent) {
  const auto [n, dim, clustered] = GetParam();
  util::Rng rng(7);
  std::vector<std::vector<double>> a(n / 2,
                                     std::vector<double>(dim, 0.0));
  std::vector<std::vector<double>> b(n / 2,
                                     std::vector<double>(dim, 0.0));
  for (auto& p : a) {
    for (double& v : p) v = rng.Gaussian(0, 1);
  }
  for (auto& p : b) {
    for (double& v : p) v = rng.Gaussian(clustered ? 4.0 : 0.0, 1);
  }
  auto result = CrossMatchTest(a, b, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(2 * result->a_dd + result->a_dm, n / 2);
  EXPECT_EQ(2 * result->a_mm + result->a_dm, n / 2);
  if (clustered && n >= 16) {
    // Well-separated clusters: almost no cross pairs, tiny p-value.
    EXPECT_LE(result->a_dm, 2);
    EXPECT_LT(result->p_value, 0.1);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesDims, MatchingPropertyTest,
    ::testing::Combine(::testing::Values(8, 14, 40, 100),
                       ::testing::Values(2, 5),
                       ::testing::Bool()),
    [](const ::testing::TestParamInfo<Param>& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_d" +
             std::to_string(std::get<1>(info.param)) +
             (std::get<2>(info.param) ? "_clustered" : "_uniform");
    });

}  // namespace
}  // namespace deepaqp::stats
