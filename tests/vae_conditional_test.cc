#include <gtest/gtest.h>

#include "data/generators.h"
#include "ensemble/ensemble_model.h"
#include "ensemble/partitioning.h"
#include "vae/vae_model.h"

namespace deepaqp::vae {
namespace {

VaeAqpOptions FastOptions() {
  VaeAqpOptions opts;
  opts.epochs = 10;
  opts.hidden_dim = 48;
  opts.seed = 71;
  opts.encoder.numeric_bins = 16;
  return opts;
}

TEST(ConditionalGenerationTest, AllRowsSatisfyPredicate) {
  auto table = data::GenerateTaxi({.rows = 4000, .seed = 1});
  auto model = VaeAqpModel::Train(table, FastOptions());
  ASSERT_TRUE(model.ok());
  aqp::Predicate pred;
  pred.conditions.push_back({0, aqp::CmpOp::kEq, 0.0});  // Manhattan
  pred.conditions.push_back(
      {static_cast<size_t>(table.schema().IndexOf("trip_distance")),
       aqp::CmpOp::kLt, 5.0});
  util::Rng rng(2);
  auto sample = (*model)->GenerateWhere(200, pred, kTPlusInf, rng);
  EXPECT_EQ(sample.num_rows(), 200u);
  for (size_t r = 0; r < sample.num_rows(); ++r) {
    EXPECT_TRUE(pred.Matches(sample, r));
  }
}

TEST(ConditionalGenerationTest, EmptyPredicateIsPlainGeneration) {
  auto table = data::GenerateTaxi({.rows = 1000, .seed = 3});
  auto model = VaeAqpModel::Train(table, FastOptions());
  ASSERT_TRUE(model.ok());
  util::Rng rng(4);
  auto sample = (*model)->GenerateWhere(50, aqp::Predicate{}, kTPlusInf,
                                        rng);
  EXPECT_EQ(sample.num_rows(), 50u);
}

TEST(ConditionalGenerationTest, ImpossiblePredicateHitsCandidateCap) {
  auto table = data::GenerateTaxi({.rows = 1000, .seed = 5});
  auto model = VaeAqpModel::Train(table, FastOptions());
  ASSERT_TRUE(model.ok());
  aqp::Predicate impossible;
  impossible.conditions.push_back(
      {static_cast<size_t>(table.schema().IndexOf("fare")),
       aqp::CmpOp::kGt, 1e12});
  util::Rng rng(6);
  auto sample = (*model)->GenerateWhere(10, impossible, kTPlusInf, rng,
                                        /*max_candidates=*/4096);
  EXPECT_EQ(sample.num_rows(), 0u);
}

TEST(EnsembleSerializationTest, RoundTripGenerates) {
  auto table = data::GenerateTaxi({.rows = 3000, .seed = 7});
  auto groups = ensemble::GroupByAttribute(table, 0, 0.02);
  ensemble::Partition partition;
  for (size_t g = 0; g < std::min<size_t>(3, groups.size()); ++g) {
    partition.parts.push_back({static_cast<int>(g)});
  }
  auto model =
      ensemble::EnsembleModel::Train(table, groups, partition,
                                     FastOptions());
  ASSERT_TRUE(model.ok());
  auto bytes = (*model)->Serialize();
  EXPECT_GT(bytes.size(), 1000u);

  auto back = ensemble::EnsembleModel::Deserialize(bytes);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ((*back)->num_members(), (*model)->num_members());
  util::Rng r1(8), r2(8);
  auto s1 = (*model)->Generate(100, kTPlusInf, r1);
  auto s2 = (*back)->Generate(100, kTPlusInf, r2);
  ASSERT_EQ(s1.num_rows(), s2.num_rows());
  for (size_t r = 0; r < s1.num_rows(); ++r) {
    EXPECT_EQ(s1.CatCode(r, 0), s2.CatCode(r, 0));
  }
}

TEST(EnsembleSerializationTest, RejectsGarbage) {
  EXPECT_FALSE(ensemble::EnsembleModel::Deserialize({1, 2, 3}).ok());
  util::ByteWriter w;
  w.WriteString("deepaqp-ensemble-v1");
  w.WriteU64(2);
  w.WriteF64Vector({1.0});  // weight count mismatch
  EXPECT_FALSE(ensemble::EnsembleModel::Deserialize(w.bytes()).ok());
}

}  // namespace
}  // namespace deepaqp::vae
