// Parameterized property suite for the sample-based estimator: for every
// aggregate function and query shape, (a) the full table as a "sample"
// reproduces the exact answer, and (b) estimates converge to the exact
// answer as the sample grows.

#include <cmath>
#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "aqp/estimator.h"
#include "aqp/executor.h"
#include "aqp/metrics.h"
#include "data/generators.h"

namespace deepaqp::aqp {
namespace {

struct Shape {
  const char* name;
  bool filtered;
  bool grouped;
};

using Param = std::tuple<AggFunc, Shape>;

class EstimatorPropertyTest : public ::testing::TestWithParam<Param> {
 protected:
  EstimatorPropertyTest()
      : table_(data::GenerateTaxi({.rows = 20000, .seed = 77})) {}

  AggregateQuery MakeQuery() const {
    const auto& [agg, shape] = GetParam();
    AggregateQuery q;
    q.agg = agg;
    if (agg != AggFunc::kCount) {
      q.measure_attr = table_.schema().IndexOf("fare");
    }
    if (agg == AggFunc::kQuantile) q.quantile = 0.5;
    if (shape.filtered) {
      q.filter.conditions.push_back(
          {static_cast<size_t>(table_.schema().IndexOf("trip_distance")),
           CmpOp::kGt, 1.5});
    }
    if (shape.grouped) {
      q.group_by_attr = table_.schema().IndexOf("pickup_borough");
    }
    return q;
  }

  relation::Table table_;
};

TEST_P(EstimatorPropertyTest, FullSampleIsExact) {
  const AggregateQuery q = MakeQuery();
  auto exact = ExecuteExact(q, table_);
  auto est = EstimateFromSample(q, table_, table_.num_rows());
  ASSERT_TRUE(exact.ok());
  ASSERT_TRUE(est.ok());
  ASSERT_EQ(est->groups.size(), exact->groups.size());
  for (const auto& g : exact->groups) {
    const GroupValue* e = est->Find(g.group);
    ASSERT_NE(e, nullptr);
    EXPECT_NEAR(e->value, g.value, 1e-6 * (1.0 + std::abs(g.value)));
  }
}

TEST_P(EstimatorPropertyTest, ErrorShrinksWithSampleSize) {
  const AggregateQuery q = MakeQuery();
  auto exact = ExecuteExact(q, table_);
  ASSERT_TRUE(exact.ok());
  util::Rng rng(11);
  double err_small = 0.0, err_large = 0.0;
  const int trials = 12;
  for (int t = 0; t < trials; ++t) {
    auto small = table_.SampleRows(200, rng);
    auto large = table_.SampleRows(5000, rng);
    auto es = EstimateFromSample(q, small, table_.num_rows());
    auto el = EstimateFromSample(q, large, table_.num_rows());
    ASSERT_TRUE(es.ok());
    ASSERT_TRUE(el.ok());
    err_small += ResultRelativeError(*es, *exact);
    err_large += ResultRelativeError(*el, *exact);
  }
  EXPECT_LE(err_large, err_small + 1e-9);
  EXPECT_LT(err_large / trials, 0.1);
}

TEST_P(EstimatorPropertyTest, SupportsNeverExceedSampleSize) {
  const AggregateQuery q = MakeQuery();
  util::Rng rng(13);
  auto sample = table_.SampleRows(500, rng);
  auto est = EstimateFromSample(q, sample, table_.num_rows());
  ASSERT_TRUE(est.ok());
  size_t total_support = 0;
  for (const auto& g : est->groups) total_support += g.support;
  EXPECT_LE(total_support, 500u);
}

constexpr Shape kShapes[] = {
    {"plain", false, false},
    {"filtered", true, false},
    {"grouped", false, true},
    {"filtered_grouped", true, true},
};

INSTANTIATE_TEST_SUITE_P(
    AggByShape, EstimatorPropertyTest,
    ::testing::Combine(::testing::Values(AggFunc::kCount, AggFunc::kSum,
                                         AggFunc::kAvg, AggFunc::kQuantile),
                       ::testing::ValuesIn(kShapes)),
    [](const ::testing::TestParamInfo<Param>& info) {
      return std::string(AggFuncName(std::get<0>(info.param))) + "_" +
             std::get<1>(info.param).name;
    });

}  // namespace
}  // namespace deepaqp::aqp
