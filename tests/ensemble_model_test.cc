#include "ensemble/ensemble_model.h"

#include <cmath>

#include <gtest/gtest.h>

#include "aqp/executor.h"
#include "aqp/metrics.h"
#include "data/generators.h"
#include "util/failpoint.h"

namespace deepaqp::ensemble {
namespace {

/// Scoped fail-point hygiene for the degraded-training scenarios below:
/// the registry is process-global, so leak nothing into sibling tests.
struct FailpointGuard {
  FailpointGuard() { util::DisableFailpoints(); }
  ~FailpointGuard() { util::DisableFailpoints(); }
};

vae::VaeAqpOptions FastOptions() {
  vae::VaeAqpOptions opts;
  opts.epochs = 6;
  opts.hidden_dim = 32;
  opts.seed = 31;
  opts.encoder.numeric_bins = 16;
  return opts;
}

TEST(EnsembleModelTest, TrainRejectsBadPartitions) {
  auto table = data::GenerateTaxi({.rows = 1000, .seed = 1});
  auto groups = GroupByAttribute(table, 0, 0.02);
  Partition empty;
  EXPECT_FALSE(EnsembleModel::Train(table, groups, empty, FastOptions()).ok());
  Partition bad;
  bad.parts = {{999}};
  EXPECT_FALSE(EnsembleModel::Train(table, groups, bad, FastOptions()).ok());
}

TEST(EnsembleModelTest, GeneratesWithProportionalAllocation) {
  auto table = data::GenerateTaxi({.rows = 4000, .seed = 2});
  auto groups = GroupByAttribute(table, 0, 0.02);
  ASSERT_GE(groups.size(), 3u);
  // One part per group ("K = All").
  Partition partition;
  for (size_t g = 0; g < groups.size(); ++g) {
    partition.parts.push_back({static_cast<int>(g)});
  }
  auto model = EnsembleModel::Train(table, groups, partition, FastOptions());
  ASSERT_TRUE(model.ok());
  EXPECT_EQ((*model)->num_members(), groups.size());

  util::Rng rng(3);
  auto sample = (*model)->Generate(2000, vae::kTPlusInf, rng);
  EXPECT_EQ(sample.num_rows(), 2000u);
  EXPECT_TRUE(sample.schema() == table.schema());

  // Borough marginal preserved within tolerance: the per-group models plus
  // proportional allocation should match the Manhattan fraction closely.
  auto frac = [](const relation::Table& t, int32_t code) {
    size_t hits = 0;
    for (size_t r = 0; r < t.num_rows(); ++r) {
      hits += t.CatCode(r, 0) == code;
    }
    return static_cast<double>(hits) / t.num_rows();
  };
  EXPECT_NEAR(frac(sample, 0), frac(table, 0), 0.1);
}

TEST(EnsembleModelTest, PerGroupModelsSpecialize) {
  // Members trained on single-borough partitions generate (almost) only
  // that borough: per-partition specialization, the motivation of Sec. V.
  auto table = data::GenerateTaxi({.rows = 3000, .seed = 4});
  auto groups = GroupByAttribute(table, 0, 0.02);
  Partition partition;
  partition.parts.push_back({0});  // largest group only
  vae::VaeAqpOptions opts = FastOptions();
  opts.epochs = 25;
  opts.learning_rate = 5e-3f;
  auto model =
      EnsembleModel::Train(table.Gather(groups[0].rows),
                           {AtomicGroup{"g0", [&] {
                              std::vector<size_t> rows(
                                  groups[0].rows.size());
                              for (size_t i = 0; i < rows.size(); ++i) {
                                rows[i] = i;
                              }
                              return rows;
                            }()}},
                           partition, opts);
  ASSERT_TRUE(model.ok());
  util::Rng rng(5);
  auto sample = (*model)->Generate(400, vae::kTPlusInf, rng);
  size_t dominant = 0;
  int32_t code0 = table.CatCode(groups[0].rows[0], 0);
  for (size_t r = 0; r < sample.num_rows(); ++r) {
    dominant += sample.CatCode(r, 0) == code0;
  }
  EXPECT_GT(static_cast<double>(dominant) / sample.num_rows(), 0.8);
}

TEST(EnsembleModelTest, TotalRElboAndSizeAccounting) {
  auto table = data::GenerateTaxi({.rows = 2000, .seed = 6});
  auto groups = GroupByAttribute(table, 0, 0.02);
  Partition partition;
  partition.parts.push_back({});
  for (size_t g = 0; g < groups.size(); ++g) {
    partition.parts[0].push_back(static_cast<int>(g));
  }
  auto one = EnsembleModel::Train(table, groups, partition, FastOptions());
  ASSERT_TRUE(one.ok());
  EXPECT_EQ((*one)->num_members(), 1u);
  util::Rng rng(7);
  const double loss = (*one)->TotalRElboLoss(table, 0.0, rng);
  EXPECT_TRUE(std::isfinite(loss));
  EXPECT_GT((*one)->ModelSizeBytes(), 1000u);
}

TEST(EnsembleModelTest, SamplerWorksWithHarness) {
  auto table = data::GenerateTaxi({.rows = 2000, .seed = 8});
  auto groups = GroupByAttribute(table, 0, 0.02);
  Partition partition;
  for (size_t g = 0; g < std::min<size_t>(2, groups.size()); ++g) {
    partition.parts.push_back({static_cast<int>(g)});
  }
  auto model = EnsembleModel::Train(table, groups, partition, FastOptions());
  ASSERT_TRUE(model.ok());
  auto sampler = (*model)->MakeSampler(vae::kTPlusInf);
  util::Rng rng(9);
  auto s = sampler(150, rng);
  EXPECT_EQ(s.num_rows(), 150u);
}

TEST(EnsembleModelTest, MemberRetriesAfterTransientFaultAndFullyRecovers) {
  FailpointGuard guard;
  auto table = data::GenerateTaxi({.rows = 1200, .seed = 9});
  auto groups = GroupByAttribute(table, 0, 0.02);
  ASSERT_GE(groups.size(), 2u);
  Partition partition;
  partition.parts = {{0}, {1}};
  // Exactly one member-training attempt fails (whichever evaluates first);
  // the bounded retry with a perturbed seed must recover it in full.
  ASSERT_TRUE(util::ConfigureFailpoints("ensemble/train_member=once").ok());
  EnsembleTrainReport report;
  auto model =
      EnsembleModel::Train(table, groups, partition, FastOptions(), &report);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  EXPECT_EQ(report.members_total, 2u);
  EXPECT_EQ(report.members_trained, 2u);
  EXPECT_EQ(report.retries, 1u);
  EXPECT_EQ(report.coverage, 1.0);
  EXPECT_FALSE(report.degraded());
  EXPECT_TRUE(report.member_errors.empty());
  EXPECT_EQ((*model)->num_members(), 2u);
  util::Rng rng(4);
  auto sample = (*model)->Generate(300, vae::kTPlusInf, rng);
  EXPECT_EQ(sample.num_rows(), 300u);
}

TEST(EnsembleModelTest, PermanentMemberFailureSkippedWithRenormalizedWeights) {
  FailpointGuard guard;
  auto table = data::GenerateTaxi({.rows = 1500, .seed = 10});
  auto groups = GroupByAttribute(table, 0, 0.02);
  ASSERT_GE(groups.size(), 3u);
  Partition partition;
  partition.parts = {{0}, {1}, {2}};
  // Member 1 fails on every attempt; the ensemble must complete degraded
  // with the surviving members' weights renormalized over their rows.
  ASSERT_TRUE(
      util::ConfigureFailpoints("ensemble/train_member=always@1").ok());
  EnsembleTrainReport report;
  auto model =
      EnsembleModel::Train(table, groups, partition, FastOptions(), &report);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  EXPECT_EQ(report.members_total, 3u);
  EXPECT_EQ(report.members_trained, 2u);
  EXPECT_TRUE(report.degraded());
  ASSERT_EQ(report.member_errors.size(), 1u);
  EXPECT_NE(report.member_errors[0].find("member-0001"), std::string::npos);
  EXPECT_NE(report.member_errors[0].find("injected fault"),
            std::string::npos);
  const double total = static_cast<double>(
      groups[0].rows.size() + groups[1].rows.size() + groups[2].rows.size());
  const double covered =
      static_cast<double>(groups[0].rows.size() + groups[2].rows.size());
  EXPECT_DOUBLE_EQ(report.coverage, covered / total);
  // Renormalized mixture: generation still fills the full request from the
  // surviving members.
  EXPECT_EQ((*model)->num_members(), 2u);
  util::Rng rng(6);
  auto sample = (*model)->Generate(400, vae::kTPlusInf, rng);
  EXPECT_EQ(sample.num_rows(), 400u);
}

TEST(EnsembleModelTest, AllMembersFailingReturnsDescriptiveStatus) {
  FailpointGuard guard;
  auto table = data::GenerateTaxi({.rows = 1000, .seed = 11});
  auto groups = GroupByAttribute(table, 0, 0.02);
  ASSERT_GE(groups.size(), 2u);
  Partition partition;
  partition.parts = {{0}, {1}};
  ASSERT_TRUE(util::ConfigureFailpoints("ensemble/train_member=always").ok());
  EnsembleTrainReport report;
  auto model =
      EnsembleModel::Train(table, groups, partition, FastOptions(), &report);
  ASSERT_FALSE(model.ok());
  const std::string message = model.status().ToString();
  EXPECT_NE(message.find("all 2 ensemble members failed"), std::string::npos)
      << message;
  EXPECT_NE(message.find("injected fault"), std::string::npos) << message;
  EXPECT_EQ(report.members_trained, 0u);
  EXPECT_EQ(report.coverage, 0.0);
  EXPECT_EQ(report.member_errors.size(), 2u);
  EXPECT_EQ(report.retries, 4u);  // two bounded retries per member
}

}  // namespace
}  // namespace deepaqp::ensemble
