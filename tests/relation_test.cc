#include "relation/table.h"

#include <cstdio>

#include <gtest/gtest.h>

#include "relation/csv.h"
#include "relation/dictionary.h"
#include "relation/schema.h"
#include "util/rng.h"

namespace deepaqp::relation {
namespace {

Schema TwoColSchema() {
  Schema schema;
  EXPECT_TRUE(schema.AddAttribute("color", AttrType::kCategorical).ok());
  EXPECT_TRUE(schema.AddAttribute("price", AttrType::kNumeric).ok());
  return schema;
}

TEST(SchemaTest, AddAndLookup) {
  Schema schema = TwoColSchema();
  EXPECT_EQ(schema.num_attributes(), 2u);
  EXPECT_EQ(schema.IndexOf("color"), 0);
  EXPECT_EQ(schema.IndexOf("price"), 1);
  EXPECT_EQ(schema.IndexOf("missing"), -1);
  EXPECT_TRUE(schema.IsCategorical(0));
  EXPECT_TRUE(schema.IsNumeric(1));
}

TEST(SchemaTest, RejectsDuplicateNames) {
  Schema schema = TwoColSchema();
  EXPECT_FALSE(schema.AddAttribute("color", AttrType::kNumeric).ok());
}

TEST(SchemaTest, TypeIndexLists) {
  Schema schema = TwoColSchema();
  ASSERT_TRUE(schema.AddAttribute("size", AttrType::kCategorical).ok());
  auto cats = schema.CategoricalIndices();
  auto nums = schema.NumericIndices();
  ASSERT_EQ(cats.size(), 2u);
  EXPECT_EQ(cats[0], 0u);
  EXPECT_EQ(cats[1], 2u);
  ASSERT_EQ(nums.size(), 1u);
  EXPECT_EQ(nums[0], 1u);
}

TEST(SchemaTest, Equality) {
  EXPECT_TRUE(TwoColSchema() == TwoColSchema());
  Schema other;
  ASSERT_TRUE(other.AddAttribute("color", AttrType::kNumeric).ok());
  ASSERT_TRUE(other.AddAttribute("price", AttrType::kNumeric).ok());
  EXPECT_FALSE(TwoColSchema() == other);
}

TEST(DictionaryTest, AssignsDenseCodesInFirstSeenOrder) {
  Dictionary d;
  EXPECT_EQ(d.GetOrAdd("red"), 0);
  EXPECT_EQ(d.GetOrAdd("green"), 1);
  EXPECT_EQ(d.GetOrAdd("red"), 0);
  EXPECT_EQ(d.size(), 2);
  EXPECT_EQ(d.LabelOf(1), "green");
  EXPECT_EQ(d.Lookup("blue"), -1);
}

TEST(TableTest, AppendAndRead) {
  Table t(TwoColSchema());
  t.AppendRow({Datum::Categorical(2), Datum::Numeric(9.5)});
  t.AppendRow({Datum::Categorical(0), Datum::Numeric(-1.0)});
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.CatCode(0, 0), 2);
  EXPECT_EQ(t.NumValue(1, 1), -1.0);
  EXPECT_EQ(t.CellAsDouble(0, 0), 2.0);
  EXPECT_EQ(t.CellAsDouble(0, 1), 9.5);
}

TEST(TableTest, CardinalityTracksMaxCodeAndDeclaration) {
  Table t(TwoColSchema());
  t.AppendRow({Datum::Categorical(4), Datum::Numeric(0)});
  EXPECT_EQ(t.Cardinality(0), 5);
  t.DeclareCardinality(0, 10);
  EXPECT_EQ(t.Cardinality(0), 10);
}

TEST(TableTest, NumericRange) {
  Table t(TwoColSchema());
  EXPECT_EQ(t.NumericRange(1), (std::pair<double, double>{0.0, 0.0}));
  t.AppendRow({Datum::Categorical(0), Datum::Numeric(3.0)});
  t.AppendRow({Datum::Categorical(0), Datum::Numeric(-2.0)});
  t.AppendRow({Datum::Categorical(0), Datum::Numeric(7.0)});
  auto [mn, mx] = t.NumericRange(1);
  EXPECT_EQ(mn, -2.0);
  EXPECT_EQ(mx, 7.0);
}

TEST(TableTest, GatherPreservesOrderAndAllowsDuplicates) {
  Table t(TwoColSchema());
  for (int i = 0; i < 5; ++i) {
    t.AppendRow({Datum::Categorical(i), Datum::Numeric(i * 10.0)});
  }
  Table g = t.Gather({4, 0, 4});
  ASSERT_EQ(g.num_rows(), 3u);
  EXPECT_EQ(g.CatCode(0, 0), 4);
  EXPECT_EQ(g.CatCode(1, 0), 0);
  EXPECT_EQ(g.NumValue(2, 1), 40.0);
  // Cardinality knowledge survives gathering a subset.
  EXPECT_EQ(g.Cardinality(0), 5);
}

TEST(TableTest, SampleRowsSizeAndMembership) {
  Table t(TwoColSchema());
  for (int i = 0; i < 100; ++i) {
    t.AppendRow({Datum::Categorical(0), Datum::Numeric(i)});
  }
  util::Rng rng(5);
  Table s = t.SampleRows(30, rng);
  EXPECT_EQ(s.num_rows(), 30u);
  for (size_t r = 0; r < s.num_rows(); ++r) {
    const double v = s.NumValue(r, 1);
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 100.0);
  }
}

TEST(TableTest, AppendMergesCompatibleTables) {
  Table a(TwoColSchema());
  a.AppendRow({Datum::Categorical(1), Datum::Numeric(1.0)});
  Table b(TwoColSchema());
  b.AppendRow({Datum::Categorical(3), Datum::Numeric(2.0)});
  ASSERT_TRUE(a.Append(b).ok());
  EXPECT_EQ(a.num_rows(), 2u);
  EXPECT_EQ(a.CatCode(1, 0), 3);
  EXPECT_EQ(a.Cardinality(0), 4);
}

TEST(TableTest, AppendRemapsThroughDictionaries) {
  Table a(TwoColSchema());
  a.AppendRow({Datum::Categorical(a.InternLabel(0, "red")),
               Datum::Numeric(1.0)});
  Table b(TwoColSchema());
  b.AppendRow({Datum::Categorical(b.InternLabel(0, "blue")),
               Datum::Numeric(2.0)});
  b.AppendRow({Datum::Categorical(b.InternLabel(0, "red")),
               Datum::Numeric(3.0)});
  ASSERT_TRUE(a.Append(b).ok());
  ASSERT_EQ(a.num_rows(), 3u);
  // "blue" got a fresh code in a's dictionary; "red" reused code 0.
  EXPECT_EQ(a.dict(0).LabelOf(a.CatCode(1, 0)), "blue");
  EXPECT_EQ(a.CatCode(2, 0), 0);
}

TEST(TableTest, AppendRejectsSchemaMismatch) {
  Table a(TwoColSchema());
  Schema other;
  ASSERT_TRUE(other.AddAttribute("x", AttrType::kNumeric).ok());
  Table b(other);
  EXPECT_FALSE(a.Append(b).ok());
}

TEST(CsvTest, RoundTrip) {
  Table t(TwoColSchema());
  t.AppendRow({Datum::Categorical(t.InternLabel(0, "red")),
               Datum::Numeric(1.5)});
  t.AppendRow({Datum::Categorical(t.InternLabel(0, "green")),
               Datum::Numeric(-3.25)});
  const std::string path = testing::TempDir() + "/deepaqp_csv_test.csv";
  ASSERT_TRUE(WriteCsv(t, path).ok());

  auto back = ReadCsv(path, t.schema());
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->num_rows(), 2u);
  EXPECT_EQ(back->dict(0).LabelOf(back->CatCode(0, 0)), "red");
  EXPECT_EQ(back->NumValue(1, 1), -3.25);
  std::remove(path.c_str());
}

TEST(CsvTest, BadNumericFieldIsReported) {
  const std::string path = testing::TempDir() + "/deepaqp_csv_bad.csv";
  std::FILE* f = std::fopen(path.c_str(), "w");
  std::fputs("color,price\nred,notanumber\n", f);
  std::fclose(f);
  auto back = ReadCsv(path, TwoColSchema());
  EXPECT_FALSE(back.ok());
  std::remove(path.c_str());
}

TEST(CsvTest, HeaderWidthMismatchIsReported) {
  const std::string path = testing::TempDir() + "/deepaqp_csv_hdr.csv";
  std::FILE* f = std::fopen(path.c_str(), "w");
  std::fputs("only_one_column\n", f);
  std::fclose(f);
  auto back = ReadCsv(path, TwoColSchema());
  EXPECT_FALSE(back.ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace deepaqp::relation
