// Parameterized property suite for tuple encodings: across every encoding
// kind, bin budget, and dataset, encoding stays within [0,1], clean
// encodings decode back to the original categorical codes, and numeric
// round trips stay within one bin width.

#include <cmath>
#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "data/generators.h"
#include "encoding/tuple_encoder.h"

namespace deepaqp::encoding {
namespace {

using Param = std::tuple<EncodingKind, int, const char*>;

relation::Table MakeDataset(const std::string& name) {
  if (name == "census") return data::GenerateCensus({.rows = 800, .seed = 9});
  if (name == "flights") {
    data::FlightsConfig cfg;
    cfg.rows = 800;
    cfg.seed = 9;
    cfg.flight_number_cardinality = 200;
    return data::GenerateFlights(cfg);
  }
  return data::GenerateTaxi({.rows = 800, .seed = 9});
}

class EncodingPropertyTest : public ::testing::TestWithParam<Param> {
 protected:
  EncodingPropertyTest() : table_(MakeDataset(std::get<2>(GetParam()))) {}

  TupleEncoder Fit() {
    EncoderOptions options;
    options.kind = std::get<0>(GetParam());
    options.numeric_bins = std::get<1>(GetParam());
    auto enc = TupleEncoder::Fit(table_, options);
    EXPECT_TRUE(enc.ok());
    return std::move(enc).value();
  }

  relation::Table table_;
};

TEST_P(EncodingPropertyTest, EncodedValuesAreUnitInterval) {
  TupleEncoder enc = Fit();
  auto m = enc.EncodeAll(table_);
  ASSERT_EQ(m.rows(), table_.num_rows());
  ASSERT_EQ(m.cols(), enc.encoded_dim());
  for (size_t i = 0; i < m.size(); ++i) {
    EXPECT_GE(m.data()[i], 0.0f);
    EXPECT_LE(m.data()[i], 1.0f);
  }
}

TEST_P(EncodingPropertyTest, CleanBitsDecodeToOriginalCodes) {
  TupleEncoder enc = Fit();
  auto m = enc.EncodeAll(table_);
  const auto cats = table_.schema().CategoricalIndices();
  for (size_t r = 0; r < 100; ++r) {
    auto codes = enc.DecodeBitsToCodes(m.Row(r));
    for (size_t c : cats) {
      EXPECT_EQ(codes[c], table_.CatCode(r, c))
          << "row " << r << " attr " << c;
    }
  }
}

TEST_P(EncodingPropertyTest, NumericRoundTripWithinOneBin) {
  TupleEncoder enc = Fit();
  auto m = enc.EncodeAll(table_);
  for (size_t c : table_.schema().NumericIndices()) {
    const auto& layout = enc.layout()[c];
    for (size_t r = 0; r < 50; ++r) {
      auto codes = enc.DecodeBitsToCodes(m.Row(r));
      const int32_t bin = codes[c];
      ASSERT_GE(bin, 0);
      ASSERT_LT(bin, layout.cardinality);
      const double v = table_.NumValue(r, c);
      // Original value must lie inside (or at the boundary of) its bin.
      EXPECT_GE(v, layout.bin_edges[bin] - 1e-9);
      EXPECT_LE(v, layout.bin_edges[bin + 1] + 1e-9);
    }
  }
}

TEST_P(EncodingPropertyTest, SerializationPreservesEncoding) {
  TupleEncoder enc = Fit();
  util::ByteWriter w;
  enc.Serialize(w);
  util::ByteReader r(w.bytes());
  auto back = TupleEncoder::Deserialize(r);
  ASSERT_TRUE(back.ok());
  auto m1 = enc.EncodeAll(table_);
  auto m2 = back->EncodeAll(table_);
  ASSERT_EQ(m1.size(), m2.size());
  for (size_t i = 0; i < m1.size(); i += 17) {
    EXPECT_EQ(m1.data()[i], m2.data()[i]);
  }
}

TEST_P(EncodingPropertyTest, DecodedTablesStayInDomain) {
  TupleEncoder enc = Fit();
  util::Rng rng(31);
  nn::Matrix logits(64, enc.encoded_dim());
  logits.RandomizeGaussian(rng, 3.0f);
  for (DecodeStrategy strategy :
       {DecodeStrategy::kNaive, DecodeStrategy::kMaxVote,
        DecodeStrategy::kWeightedRandom}) {
    auto decoded = enc.DecodeLogits(logits, {strategy, 4}, rng);
    ASSERT_EQ(decoded.num_rows(), 64u);
    for (size_t c : table_.schema().CategoricalIndices()) {
      for (size_t r = 0; r < decoded.num_rows(); ++r) {
        EXPECT_GE(decoded.CatCode(r, c), 0);
        EXPECT_LT(decoded.CatCode(r, c), enc.layout()[c].cardinality);
      }
    }
    for (size_t c : table_.schema().NumericIndices()) {
      const auto& layout = enc.layout()[c];
      for (size_t r = 0; r < decoded.num_rows(); ++r) {
        EXPECT_GE(decoded.NumValue(r, c), layout.bin_edges.front() - 1e-9);
        EXPECT_LE(decoded.NumValue(r, c), layout.bin_edges.back() + 1e-9);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    KindsBinsDatasets, EncodingPropertyTest,
    ::testing::Combine(::testing::Values(EncodingKind::kOneHot,
                                         EncodingKind::kBinary,
                                         EncodingKind::kInteger),
                       ::testing::Values(4, 16, 64),
                       ::testing::Values("taxi", "census", "flights")),
    [](const ::testing::TestParamInfo<Param>& info) {
      std::string name = EncodingKindName(std::get<0>(info.param));
      // gtest names must be alphanumeric.
      name.erase(std::remove(name.begin(), name.end(), '-'), name.end());
      return name + "_b" + std::to_string(std::get<1>(info.param)) + "_" +
             std::get<2>(info.param);
    });

}  // namespace
}  // namespace deepaqp::encoding
