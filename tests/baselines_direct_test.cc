#include <gtest/gtest.h>

#include "aqp/evaluation.h"
#include "aqp/executor.h"
#include "aqp/metrics.h"
#include "baselines/dbest.h"
#include "baselines/neural_cubes.h"
#include "data/generators.h"
#include "data/workload.h"

namespace deepaqp::baselines {
namespace {

std::vector<aqp::AggregateQuery> MakeWorkload(const relation::Table& table,
                                              size_t n, uint64_t seed) {
  data::WorkloadConfig cfg;
  cfg.num_queries = n;
  cfg.seed = seed;
  return data::GenerateWorkload(table, cfg);
}

TEST(DbestTest, AnswersKnownTemplatesAccurately) {
  auto table = data::GenerateCensus({.rows = 10000, .seed = 1});
  auto workload = MakeWorkload(table, 40, 2);
  auto model = DbestModel::Build(table, workload, {});
  ASSERT_TRUE(model.ok());
  EXPECT_GT((*model)->num_templates(), 0u);

  // Evaluate exactly the training templates.
  double total_err = 0.0;
  int answered = 0;
  for (const auto& q : workload) {
    if (!q.filter.conjunctive && q.filter.conditions.size() > 1) continue;
    auto est = (*model)->Answer(q);
    if (!est.ok()) continue;
    auto truth = aqp::ExecuteExact(q, table);
    ASSERT_TRUE(truth.ok());
    total_err += aqp::ResultRelativeError(*est, *truth);
    ++answered;
  }
  ASSERT_GT(answered, 10);
  EXPECT_LT(total_err / answered, 0.25);
}

TEST(DbestTest, RefusesUnknownTemplatesAndDisjunctions) {
  auto table = data::GenerateCensus({.rows = 3000, .seed = 3});
  auto workload = MakeWorkload(table, 10, 4);
  auto model = DbestModel::Build(table, workload, {});
  ASSERT_TRUE(model.ok());

  // A template over an attribute pair unlikely to be in 10 queries.
  aqp::AggregateQuery novel;
  novel.agg = aqp::AggFunc::kCount;
  novel.filter.conditions.push_back({0, aqp::CmpOp::kEq, 1.0});
  novel.filter.conditions.push_back({5, aqp::CmpOp::kEq, 1.0});
  novel.filter.conditions.push_back({9, aqp::CmpOp::kGt, 0.0});
  auto r = (*model)->Answer(novel);
  EXPECT_FALSE(r.ok());

  aqp::AggregateQuery disjunctive = workload[0];
  disjunctive.filter.conditions.push_back({0, aqp::CmpOp::kEq, 0.0});
  disjunctive.filter.conditions.push_back({1, aqp::CmpOp::kEq, 0.0});
  disjunctive.filter.conjunctive = false;
  EXPECT_FALSE((*model)->Answer(disjunctive).ok());
}

TEST(DbestTest, CountScalarNoFilterIsExact) {
  auto table = data::GenerateTaxi({.rows = 2000, .seed = 5});
  aqp::AggregateQuery q;
  q.agg = aqp::AggFunc::kCount;
  auto model = DbestModel::Build(table, {q}, {});
  ASSERT_TRUE(model.ok());
  auto r = (*model)->Answer(q);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->Scalar(), 2000.0);
}

TEST(DbestTest, GroupByUsesTemplateDimensions) {
  auto table = data::GenerateTaxi({.rows = 5000, .seed = 6});
  aqp::AggregateQuery q;
  q.agg = aqp::AggFunc::kAvg;
  q.measure_attr = table.schema().IndexOf("fare");
  q.group_by_attr = table.schema().IndexOf("pickup_borough");
  auto model = DbestModel::Build(table, {q}, {});
  ASSERT_TRUE(model.ok());
  auto est = (*model)->Answer(q);
  ASSERT_TRUE(est.ok());
  auto truth = aqp::ExecuteExact(q, table);
  ASSERT_TRUE(truth.ok());
  EXPECT_LT(aqp::ResultRelativeError(*est, *truth), 0.1);
}

TEST(NeuralCubesTest, TrainRejectsDegenerateInput) {
  auto table = data::GenerateTaxi({.rows = 500, .seed = 7});
  EXPECT_FALSE(NeuralCubesModel::Train(table, {}, {}).ok());
}

TEST(NeuralCubesTest, LearnsTrainingDistributionQueries) {
  auto table = data::GenerateTaxi({.rows = 8000, .seed = 8});
  auto train = MakeWorkload(table, 120, 9);
  NeuralCubesModel::Options opts;
  opts.epochs = 80;
  auto model = NeuralCubesModel::Train(table, train, opts);
  ASSERT_TRUE(model.ok());

  // In-distribution evaluation: same generator, fresh seed.
  auto eval = MakeWorkload(table, 30, 10);
  auto errors = aqp::WorkloadRelativeErrorsDirect(eval, table,
                                                  (*model)->MakeAnswerer());
  ASSERT_TRUE(errors.ok());
  const auto summary = aqp::DistributionSummary::FromValues(*errors);
  // A learned aggregate regressor: decent in-distribution, far from exact.
  EXPECT_LT(summary.median, 0.7);
}

TEST(NeuralCubesTest, RefusesDisjunctiveFilters) {
  auto table = data::GenerateTaxi({.rows = 2000, .seed = 11});
  auto train = MakeWorkload(table, 20, 12);
  auto model = NeuralCubesModel::Train(table, train, {});
  ASSERT_TRUE(model.ok());
  aqp::AggregateQuery q;
  q.agg = aqp::AggFunc::kCount;
  q.filter.conditions.push_back({0, aqp::CmpOp::kEq, 0.0});
  q.filter.conditions.push_back({1, aqp::CmpOp::kEq, 0.0});
  q.filter.conjunctive = false;
  EXPECT_FALSE((*model)->Answer(q).ok());
}

TEST(NeuralCubesTest, GroupByDecomposition) {
  auto table = data::GenerateTaxi({.rows = 6000, .seed = 13});
  auto train = MakeWorkload(table, 100, 14);
  NeuralCubesModel::Options opts;
  opts.epochs = 60;
  auto model = NeuralCubesModel::Train(table, train, opts);
  ASSERT_TRUE(model.ok());
  aqp::AggregateQuery q;
  q.agg = aqp::AggFunc::kCount;
  q.group_by_attr = table.schema().IndexOf("pickup_borough");
  auto est = (*model)->Answer(q);
  ASSERT_TRUE(est.ok());
  EXPECT_GE(est->groups.size(), 2u);
  EXPECT_GT((*model)->NumParameters(), 100u);
}

TEST(DirectHarnessTest, RedDirectMatchesManualComputation) {
  auto table = data::GenerateTaxi({.rows = 3000, .seed = 15});
  auto workload = MakeWorkload(table, 10, 16);
  // An oracle answerer: exact execution => model error 0, so RED equals the
  // uniform sampler's own error.
  aqp::AnswerFn oracle = [&table](const aqp::AggregateQuery& q) {
    return aqp::ExecuteExact(q, table);
  };
  aqp::EvalOptions opts;
  opts.num_trials = 3;
  auto red = aqp::RelativeErrorDifferencesDirect(workload, table, oracle,
                                                 opts);
  ASSERT_TRUE(red.ok());
  // With an exact oracle, RED reduces to the uniform sampler's own relative
  // error: non-negative and finite (it can exceed 1 on low-support scalar
  // over-estimates).
  for (double r : *red) {
    EXPECT_GE(r, 0.0);
    EXPECT_LT(r, 20.0);
  }
}

}  // namespace
}  // namespace deepaqp::baselines
