#include "vae/workflow.h"

#include <gtest/gtest.h>

#include "data/generators.h"

namespace deepaqp::vae {
namespace {

VaeAqpOptions FastOptions() {
  VaeAqpOptions opts;
  opts.epochs = 10;
  opts.hidden_dim = 48;
  opts.seed = 21;
  opts.encoder.numeric_bins = 16;
  return opts;
}

TEST(WorkflowTest, ProjectToLatentShapes) {
  auto table = data::GenerateTaxi({.rows = 1500, .seed = 1});
  auto model = VaeAqpModel::Train(table, FastOptions());
  ASSERT_TRUE(model.ok());
  util::Rng rng(3);
  auto points = ProjectToLatent(**model, table.SampleRows(50, rng));
  ASSERT_EQ(points.size(), 50u);
  EXPECT_EQ(points[0].size(), (*model)->net().latent_dim());
}

TEST(WorkflowTest, RequiresEnoughData) {
  auto table = data::GenerateTaxi({.rows = 100, .seed = 2});
  auto model = VaeAqpModel::Train(table, FastOptions());
  ASSERT_TRUE(model.ok());
  BiasEliminationOptions opts;
  opts.test_points = 128;  // needs 256 rows
  EXPECT_FALSE(EliminateModelBias(**model, table, opts).ok());
}

TEST(WorkflowTest, TrainedModelPassesWithinBudget) {
  auto table = data::GenerateTaxi({.rows = 4000, .seed = 3});
  VaeAqpOptions mopts = FastOptions();
  mopts.epochs = 15;
  auto model = VaeAqpModel::Train(table, mopts);
  ASSERT_TRUE(model.ok());

  BiasEliminationOptions opts;
  opts.test_points = 64;
  opts.max_iterations = 5;
  auto result = EliminateModelBias(**model, table, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->iterations, 1);
  EXPECT_EQ(result->tests.size(), static_cast<size_t>(result->iterations));
  // Whether or not it passes on iteration 1, T must only move down.
  EXPECT_LE(result->final_t, opts.initial_t);
  for (const auto& t : result->tests) {
    EXPECT_GE(t.p_value, 0.0);
    EXPECT_LE(t.p_value, 1.0);
  }
}

TEST(WorkflowTest, LoopLowersTWhenTestRejects) {
  // An untrained (1-epoch) model is visibly biased; the loop should burn
  // iterations lowering T.
  auto table = data::GenerateCensus({.rows = 3000, .seed = 4});
  VaeAqpOptions mopts = FastOptions();
  mopts.epochs = 1;
  mopts.vrs_training = false;
  auto model = VaeAqpModel::Train(table, mopts);
  ASSERT_TRUE(model.ok());

  BiasEliminationOptions opts;
  opts.test_points = 64;
  opts.max_iterations = 3;
  auto result = EliminateModelBias(**model, table, opts);
  ASSERT_TRUE(result.ok());
  if (!result->passed) {
    EXPECT_EQ(result->iterations, 3);
    EXPECT_DOUBLE_EQ(result->final_t,
                     opts.initial_t - 2 * opts.t_step);
  }
}

}  // namespace
}  // namespace deepaqp::vae
