#include "aqp/estimator.h"

#include <cmath>

#include <gtest/gtest.h>

#include "aqp/evaluation.h"
#include "aqp/executor.h"
#include "aqp/metrics.h"
#include "data/generators.h"
#include "data/workload.h"
#include "util/rng.h"

namespace deepaqp::aqp {
namespace {

using relation::Table;

TEST(EstimatorTest, FullSampleReproducesExactAnswers) {
  auto table = data::GenerateTaxi({.rows = 3000, .seed = 1});
  AggregateQuery q;
  q.agg = AggFunc::kSum;
  q.measure_attr = table.schema().IndexOf("fare");
  // Using the whole table as "sample" with scale 1 must be exact.
  auto est = EstimateFromSample(q, table, table.num_rows());
  auto exact = ExecuteExact(q, table);
  ASSERT_TRUE(est.ok());
  ASSERT_TRUE(exact.ok());
  EXPECT_NEAR(est->Scalar(), exact->Scalar(), 1e-6 * exact->Scalar());
}

TEST(EstimatorTest, CountScalesWithPopulation) {
  auto table = data::GenerateTaxi({.rows = 1000, .seed = 2});
  AggregateQuery q;
  q.agg = AggFunc::kCount;
  auto est = EstimateFromSample(q, table, 5000);
  ASSERT_TRUE(est.ok());
  EXPECT_DOUBLE_EQ(est->Scalar(), 5000.0);
}

TEST(EstimatorTest, EmptySampleIsError) {
  auto table = data::GenerateTaxi({.rows = 100, .seed = 3});
  Table empty(table.schema());
  AggregateQuery q;
  q.agg = AggFunc::kCount;
  EXPECT_FALSE(EstimateFromSample(q, empty, 100).ok());
}

TEST(EstimatorTest, SampledEstimateConvergesToTruth) {
  auto table = data::GenerateCensus({.rows = 20000, .seed = 4});
  AggregateQuery q;
  q.agg = AggFunc::kAvg;
  q.measure_attr = table.schema().IndexOf("hours_per_week");
  const double truth = ExecuteExact(q, table)->Scalar();
  util::Rng rng(11);
  double err_small = 0.0, err_large = 0.0;
  const int trials = 20;
  for (int t = 0; t < trials; ++t) {
    auto small = table.SampleRows(100, rng);
    auto large = table.SampleRows(5000, rng);
    err_small += RelativeError(
        EstimateFromSample(q, small, table.num_rows())->Scalar(), truth);
    err_large += RelativeError(
        EstimateFromSample(q, large, table.num_rows())->Scalar(), truth);
  }
  // Larger samples must shrink the average error.
  EXPECT_LT(err_large, err_small);
}

TEST(EstimatorTest, ConfidenceIntervalCoversTruthMostly) {
  auto table = data::GenerateCensus({.rows = 20000, .seed = 5});
  AggregateQuery q;
  q.agg = AggFunc::kAvg;
  q.measure_attr = table.schema().IndexOf("age");
  const double truth = ExecuteExact(q, table)->Scalar();
  util::Rng rng(13);
  int covered = 0;
  const int trials = 100;
  for (int t = 0; t < trials; ++t) {
    auto s = table.SampleRows(400, rng);
    auto est = EstimateFromSample(q, s, table.num_rows());
    ASSERT_TRUE(est.ok());
    const auto& g = est->groups[0];
    if (std::abs(g.value - truth) <= g.ci_half_width) ++covered;
  }
  // Nominal 95%; allow sampling slack (finite-population draws are slightly
  // less dispersed than the CLT assumes, so coverage skews high).
  EXPECT_GE(covered, 85);
}

TEST(EstimatorTest, CountCiCoversTruth) {
  auto table = data::GenerateCensus({.rows = 20000, .seed = 6});
  AggregateQuery q;
  q.agg = AggFunc::kCount;
  q.filter.conditions.push_back(
      {static_cast<size_t>(table.schema().IndexOf("sex")), CmpOp::kEq, 0.0});
  const double truth = ExecuteExact(q, table)->Scalar();
  util::Rng rng(17);
  int covered = 0;
  const int trials = 100;
  for (int t = 0; t < trials; ++t) {
    auto s = table.SampleRows(500, rng);
    auto est = EstimateFromSample(q, s, table.num_rows());
    ASSERT_TRUE(est.ok());
    const auto& g = est->groups[0];
    if (std::abs(g.value - truth) <= g.ci_half_width) ++covered;
  }
  EXPECT_GE(covered, 85);
}

TEST(EvaluationTest, UniformSamplerRedIsNearZero) {
  // RED of a uniform sampler against the uniform reference must be small:
  // it is the same estimator, differing only in RNG draws.
  auto table = data::GenerateTaxi({.rows = 10000, .seed = 7});
  data::WorkloadConfig wcfg;
  wcfg.num_queries = 30;
  auto workload = data::GenerateWorkload(table, wcfg);
  ASSERT_GT(workload.size(), 10u);
  EvalOptions opts;
  opts.sample_fraction = 0.05;
  opts.num_trials = 5;
  auto red = RelativeErrorDifferences(workload, table,
                                      UniformTableSampler(table), opts);
  ASSERT_TRUE(red.ok());
  const auto summary = DistributionSummary::FromValues(*red);
  EXPECT_LT(summary.median, 0.1);
}

}  // namespace
}  // namespace deepaqp::aqp
