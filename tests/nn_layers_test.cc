#include "nn/layers.h"

#include <cmath>
#include <functional>

#include <gtest/gtest.h>

#include "nn/loss.h"

namespace deepaqp::nn {
namespace {

/// Central-difference gradient check: perturbs each parameter scalar and
/// compares the numeric dL/dp against the backprop gradient.
void CheckParameterGradients(Layer& layer, const Matrix& input,
                             const std::function<LossResult(const Matrix&)>&
                                 loss_fn,
                             float tol) {
  std::vector<Parameter*> params;
  layer.CollectParameters(&params);
  for (Parameter* p : params) p->ZeroGrad();

  Matrix out = layer.Forward(input);
  LossResult loss = loss_fn(out);
  layer.Backward(loss.grad);

  const float eps = 1e-3f;
  for (Parameter* p : params) {
    for (size_t i = 0; i < p->value.size(); i += 7) {  // spot-check stride
      const float orig = p->value.data()[i];
      p->value.data()[i] = orig + eps;
      const double up = loss_fn(layer.Forward(input)).value;
      p->value.data()[i] = orig - eps;
      const double down = loss_fn(layer.Forward(input)).value;
      p->value.data()[i] = orig;
      const double numeric = (up - down) / (2.0 * eps);
      EXPECT_NEAR(p->grad.data()[i], numeric, tol)
          << "param scalar " << i;
    }
  }
}

/// Gradient check w.r.t. the layer input.
void CheckInputGradients(Layer& layer, Matrix input,
                         const std::function<LossResult(const Matrix&)>&
                             loss_fn,
                         float tol) {
  std::vector<Parameter*> params;
  layer.CollectParameters(&params);
  for (Parameter* p : params) p->ZeroGrad();
  Matrix out = layer.Forward(input);
  LossResult loss = loss_fn(out);
  Matrix dinput = layer.Backward(loss.grad);

  const float eps = 1e-3f;
  for (size_t i = 0; i < input.size(); i += 5) {
    const float orig = input.data()[i];
    input.data()[i] = orig + eps;
    const double up = loss_fn(layer.Forward(input)).value;
    input.data()[i] = orig - eps;
    const double down = loss_fn(layer.Forward(input)).value;
    input.data()[i] = orig;
    const double numeric = (up - down) / (2.0 * eps);
    EXPECT_NEAR(dinput.data()[i], numeric, tol) << "input scalar " << i;
  }
}

Matrix RandomMatrix(size_t r, size_t c, uint64_t seed, float scale = 1.0f) {
  util::Rng rng(seed);
  Matrix m(r, c);
  m.RandomizeGaussian(rng, scale);
  return m;
}

LossResult SumLoss(const Matrix& out) {
  // L = sum of entries; grad = all ones. Simple and non-degenerate.
  LossResult r;
  r.grad = Matrix(out.rows(), out.cols(), 1.0f);
  double total = 0.0;
  for (size_t i = 0; i < out.size(); ++i) total += out.data()[i];
  r.value = total;
  return r;
}

LossResult HalfSquareLoss(const Matrix& out) {
  LossResult r;
  r.grad = out;
  double total = 0.0;
  for (size_t i = 0; i < out.size(); ++i) {
    total += 0.5 * static_cast<double>(out.data()[i]) * out.data()[i];
  }
  r.value = total;
  return r;
}

TEST(LinearTest, ForwardMatchesManual) {
  util::Rng rng(1);
  Linear lin(2, 2, rng);
  lin.weight.value.At(0, 0) = 1;
  lin.weight.value.At(0, 1) = 2;
  lin.weight.value.At(1, 0) = 3;
  lin.weight.value.At(1, 1) = 4;
  lin.bias.value.At(0, 0) = 10;
  lin.bias.value.At(0, 1) = 20;
  Matrix x(1, 2);
  x.At(0, 0) = 1;
  x.At(0, 1) = 1;
  Matrix y = lin.Forward(x);
  EXPECT_EQ(y.At(0, 0), 14.0f);
  EXPECT_EQ(y.At(0, 1), 26.0f);
}

TEST(LinearTest, GradientCheck) {
  util::Rng rng(2);
  Linear lin(4, 3, rng);
  Matrix x = RandomMatrix(5, 4, 7);
  CheckParameterGradients(lin, x, HalfSquareLoss, 2e-2f);
  CheckInputGradients(lin, x, HalfSquareLoss, 2e-2f);
}

TEST(ReluTest, ForwardAndGradient) {
  Relu relu;
  Matrix x(1, 4);
  x.At(0, 0) = -1;
  x.At(0, 1) = 2;
  x.At(0, 2) = 0;
  x.At(0, 3) = -3;
  Matrix y = relu.Forward(x);
  EXPECT_EQ(y.At(0, 0), 0.0f);
  EXPECT_EQ(y.At(0, 1), 2.0f);
  Matrix g(1, 4, 1.0f);
  Matrix dx = relu.Backward(g);
  EXPECT_EQ(dx.At(0, 0), 0.0f);
  EXPECT_EQ(dx.At(0, 1), 1.0f);
  EXPECT_EQ(dx.At(0, 3), 0.0f);
}

TEST(LeakyReluTest, GradientCheck) {
  LeakyRelu lr(0.1f);
  Matrix x = RandomMatrix(3, 6, 11);
  CheckInputGradients(lr, x, HalfSquareLoss, 2e-2f);
}

TEST(TanhTest, GradientCheck) {
  Tanh tanh_layer;
  Matrix x = RandomMatrix(3, 5, 13, 0.8f);
  CheckInputGradients(tanh_layer, x, HalfSquareLoss, 2e-2f);
}

TEST(SigmoidTest, GradientCheck) {
  Sigmoid sig;
  Matrix x = RandomMatrix(3, 5, 17, 0.8f);
  CheckInputGradients(sig, x, HalfSquareLoss, 2e-2f);
}

TEST(SequentialTest, GradientCheckThroughMlp) {
  util::Rng rng(19);
  Sequential seq;
  seq.Add(std::make_unique<Linear>(3, 8, rng));
  seq.Add(std::make_unique<Tanh>());
  seq.Add(std::make_unique<Linear>(8, 2, rng));
  Matrix x = RandomMatrix(4, 3, 23, 0.5f);
  CheckParameterGradients(seq, x, HalfSquareLoss, 3e-2f);
  CheckInputGradients(seq, x, HalfSquareLoss, 3e-2f);
}

TEST(SequentialTest, BceGradientCheck) {
  util::Rng rng(29);
  Sequential seq;
  seq.Add(std::make_unique<Linear>(4, 6, rng));
  seq.Add(std::make_unique<Relu>());
  seq.Add(std::make_unique<Linear>(6, 4, rng));
  Matrix x = RandomMatrix(5, 4, 31, 0.5f);
  Matrix targets(5, 4);
  util::Rng trng(37);
  for (size_t i = 0; i < targets.size(); ++i) {
    targets.data()[i] = trng.Bernoulli(0.5) ? 1.0f : 0.0f;
  }
  auto loss_fn = [&targets](const Matrix& out) {
    return BceWithLogits(out, targets);
  };
  CheckParameterGradients(seq, x, loss_fn, 2e-2f);
}

TEST(SequentialTest, SumLossGradients) {
  util::Rng rng(41);
  Sequential seq;
  seq.Add(std::make_unique<Linear>(2, 3, rng));
  seq.Add(std::make_unique<Sigmoid>());
  Matrix x = RandomMatrix(2, 2, 43);
  CheckParameterGradients(seq, x, SumLoss, 2e-2f);
}

TEST(SequentialTest, MakeMlpTrunkShape) {
  util::Rng rng(47);
  auto trunk = MakeMlpTrunk(10, 16, 3, rng);
  EXPECT_EQ(trunk->num_layers(), 6u);  // 3 x (Linear + ReLU)
  Matrix x = RandomMatrix(2, 10, 53);
  Matrix y = trunk->Forward(x);
  EXPECT_EQ(y.cols(), 16u);
  EXPECT_EQ(y.rows(), 2u);
}

TEST(SequentialTest, CountParameters) {
  util::Rng rng(59);
  Sequential seq;
  seq.Add(std::make_unique<Linear>(3, 4, rng));  // 12 + 4
  seq.Add(std::make_unique<Relu>());
  seq.Add(std::make_unique<Linear>(4, 2, rng));  // 8 + 2
  EXPECT_EQ(CountParameters(seq), 26u);
}

TEST(SequentialTest, SerializeRoundTripPreservesOutputs) {
  util::Rng rng(61);
  Sequential seq;
  seq.Add(std::make_unique<Linear>(5, 7, rng));
  seq.Add(std::make_unique<Relu>());
  seq.Add(std::make_unique<LeakyRelu>(0.15f));
  seq.Add(std::make_unique<Linear>(7, 3, rng));
  seq.Add(std::make_unique<Tanh>());

  util::ByteWriter w;
  seq.Serialize(w);
  util::ByteReader r(w.bytes());
  auto back = Sequential::Deserialize(r);
  ASSERT_TRUE(back.ok());

  Matrix x = RandomMatrix(4, 5, 67);
  Matrix y1 = seq.Forward(x);
  Matrix y2 = (*back)->Forward(x);
  ASSERT_EQ(y1.size(), y2.size());
  for (size_t i = 0; i < y1.size(); ++i) {
    EXPECT_FLOAT_EQ(y1.data()[i], y2.data()[i]);
  }
}

TEST(SequentialTest, DeserializeRejectsUnknownLayer) {
  util::ByteWriter w;
  w.WriteU64(1);
  w.WriteString("flux_capacitor");
  util::ByteReader r(w.bytes());
  EXPECT_FALSE(Sequential::Deserialize(r).ok());
}

}  // namespace
}  // namespace deepaqp::nn
