#include "util/rng.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace deepaqp::util {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.NextDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanApproximatelyCentered) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Uniform(-3.0, 5.0);
  EXPECT_NEAR(sum / n, 1.0, 0.05);
}

TEST(RngTest, NextIndexCoversRangeWithoutBias) {
  Rng rng(13);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.NextIndex(10)];
  for (int c : counts) {
    EXPECT_NEAR(c, n / 10, n / 10 * 0.1);
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(17);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, GaussianMomentsMatch) {
  Rng rng(19);
  const int n = 200000;
  double sum = 0.0, sumsq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.NextGaussian();
    sum += x;
    sumsq += x * x;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(23);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(29);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(31);
  std::vector<double> w = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[rng.Categorical(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(RngTest, PermutationIsBijective) {
  Rng rng(37);
  auto perm = rng.Permutation(100);
  std::set<size_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 99u);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(41);
  auto s = rng.SampleWithoutReplacement(50, 20);
  EXPECT_EQ(s.size(), 20u);
  std::set<size_t> seen(s.begin(), s.end());
  EXPECT_EQ(seen.size(), 20u);
  for (size_t v : s) EXPECT_LT(v, 50u);
}

TEST(RngTest, SampleWithoutReplacementFullRange) {
  Rng rng(43);
  auto s = rng.SampleWithoutReplacement(10, 10);
  std::set<size_t> seen(s.begin(), s.end());
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, ForkStreamsAreIndependent) {
  Rng parent(47);
  Rng child = parent.Fork();
  // Child stream should not simply replay the parent stream.
  Rng parent2(47);
  parent2.Fork();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (child.NextUint64() == parent.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, ChildStreamSameSeedSameIndexIdentical) {
  Rng a = Rng::ChildStream(1234, 7);
  Rng b = Rng::ChildStream(1234, 7);
  for (int i = 0; i < 256; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, ChildStreamDistinctIndicesDoNotOverlap) {
  // Streams for chunk indices 0..7 of one master seed must be pairwise
  // decorrelated: collect a window of outputs from each and require every
  // value to be globally unique (a replayed or shifted stream would
  // collide massively; u64 birthday collisions in 2048 draws are ~0).
  std::set<uint64_t> seen;
  const int kStreams = 8;
  const int kDraws = 256;
  for (int s = 0; s < kStreams; ++s) {
    Rng child = Rng::ChildStream(987654321, static_cast<uint64_t>(s));
    for (int i = 0; i < kDraws; ++i) seen.insert(child.NextUint64());
  }
  EXPECT_EQ(seen.size(), static_cast<size_t>(kStreams * kDraws));
}

TEST(RngTest, ChildStreamDistinctSeedsDiffer) {
  Rng a = Rng::ChildStream(1, 0);
  Rng b = Rng::ChildStream(2, 0);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, ChildStreamIndependentOfParentState) {
  // Deriving a child must not consume or depend on any Rng instance's
  // state: only (seed, index) matter, so a chunk's stream is reproducible
  // no matter how many sibling chunks were processed first.
  Rng parent(42);
  parent.NextUint64();
  Rng c1 = Rng::ChildStream(42, 3);
  for (int i = 0; i < 1000; ++i) parent.NextUint64();
  Rng c2 = Rng::ChildStream(42, 3);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(c1.NextUint64(), c2.NextUint64());
  }
}

TEST(RngTest, ChildStreamDiffersFromMasterStream) {
  Rng master(77);
  Rng child = Rng::ChildStream(77, 0);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (master.NextUint64() == child.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(ZipfTest, UniformWhenExponentZero) {
  Rng rng(53);
  ZipfDistribution z(4, 0.0);
  std::vector<int> counts(4, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[z.Sample(rng)];
  for (int c : counts) EXPECT_NEAR(c, n / 4, n / 4 * 0.1);
}

TEST(ZipfTest, SkewFavorsLowRanks) {
  Rng rng(59);
  ZipfDistribution z(100, 1.2);
  std::vector<int> counts(100, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[z.Sample(rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], n / 10);
}

TEST(ZipfTest, PmfSumsToOne) {
  ZipfDistribution z(37, 0.8);
  double total = 0.0;
  for (uint64_t k = 0; k < 37; ++k) total += z.Pmf(k);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(AliasTableTest, MatchesWeights) {
  Rng rng(61);
  std::vector<double> w = {0.5, 2.0, 0.0, 1.5};
  AliasTable alias(w);
  std::vector<int> counts(4, 0);
  const int n = 80000;
  for (int i = 0; i < n; ++i) ++counts[alias.Sample(rng)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.125, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[1]) / n, 0.5, 0.015);
  EXPECT_NEAR(static_cast<double>(counts[3]) / n, 0.375, 0.015);
}

TEST(AliasTableTest, SingleElement) {
  Rng rng(67);
  AliasTable alias({3.0});
  for (int i = 0; i < 10; ++i) EXPECT_EQ(alias.Sample(rng), 0u);
}

}  // namespace
}  // namespace deepaqp::util
