#include "util/status.h"

#include <gtest/gtest.h>

namespace deepaqp::util {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, OkStatusIsNormalizedToInternalError) {
  Result<int> r{Status::OK()};
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "hello");
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseHalf(int x, int* out) {
  DEEPAQP_ASSIGN_OR_RETURN(*out, Half(x));
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseHalf(10, &out).ok());
  EXPECT_EQ(out, 5);
  EXPECT_EQ(UseHalf(7, &out).code(), StatusCode::kInvalidArgument);
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::OutOfRange("negative");
  return Status::OK();
}

Status Chain(int x) {
  DEEPAQP_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

TEST(ResultTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(Chain(1).ok());
  EXPECT_EQ(Chain(-1).code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace deepaqp::util
