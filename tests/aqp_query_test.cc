#include "aqp/query.h"

#include <gtest/gtest.h>

namespace deepaqp::aqp {
namespace {

using relation::AttrType;
using relation::Datum;
using relation::Schema;
using relation::Table;

Schema MakeSchema() {
  Schema s;
  EXPECT_TRUE(s.AddAttribute("cat", AttrType::kCategorical).ok());
  EXPECT_TRUE(s.AddAttribute("num", AttrType::kNumeric).ok());
  return s;
}

TEST(ConditionTest, AllOperators) {
  Condition c{0, CmpOp::kEq, 5.0};
  EXPECT_TRUE(c.Matches(5.0));
  EXPECT_FALSE(c.Matches(4.0));
  c.op = CmpOp::kNe;
  EXPECT_TRUE(c.Matches(4.0));
  EXPECT_FALSE(c.Matches(5.0));
  c.op = CmpOp::kLt;
  EXPECT_TRUE(c.Matches(4.9));
  EXPECT_FALSE(c.Matches(5.0));
  c.op = CmpOp::kGt;
  EXPECT_TRUE(c.Matches(5.1));
  EXPECT_FALSE(c.Matches(5.0));
  c.op = CmpOp::kLe;
  EXPECT_TRUE(c.Matches(5.0));
  EXPECT_FALSE(c.Matches(5.1));
  c.op = CmpOp::kGe;
  EXPECT_TRUE(c.Matches(5.0));
  EXPECT_FALSE(c.Matches(4.9));
}

TEST(PredicateTest, EmptyMatchesEverything) {
  Table t(MakeSchema());
  t.AppendRow({Datum::Categorical(0), Datum::Numeric(1.0)});
  Predicate p;
  EXPECT_TRUE(p.Matches(t, 0));
}

TEST(PredicateTest, ConjunctionAndDisjunction) {
  Table t(MakeSchema());
  t.AppendRow({Datum::Categorical(1), Datum::Numeric(10.0)});
  Predicate p;
  p.conditions.push_back({0, CmpOp::kEq, 1.0});
  p.conditions.push_back({1, CmpOp::kGt, 20.0});
  p.conjunctive = true;
  EXPECT_FALSE(p.Matches(t, 0));
  p.conjunctive = false;
  EXPECT_TRUE(p.Matches(t, 0));
}

TEST(QueryTest, ToStringRendersSqlLikeText) {
  Schema s = MakeSchema();
  AggregateQuery q;
  q.agg = AggFunc::kAvg;
  q.measure_attr = 1;
  q.filter.conditions.push_back({0, CmpOp::kEq, 2.0});
  q.group_by_attr = 0;
  const std::string text = q.ToString(s);
  EXPECT_NE(text.find("AVG(num)"), std::string::npos);
  EXPECT_NE(text.find("WHERE cat = 2"), std::string::npos);
  EXPECT_NE(text.find("GROUP BY cat"), std::string::npos);
}

TEST(QueryTest, ToStringCountStar) {
  Schema s = MakeSchema();
  AggregateQuery q;
  q.agg = AggFunc::kCount;
  EXPECT_EQ(q.ToString(s), "SELECT COUNT(*) FROM R");
}

TEST(QueryResultTest, ScalarAndFind) {
  QueryResult r;
  r.groups.push_back(GroupValue{-1, 42.0, 10, 0.0});
  EXPECT_EQ(r.Scalar(), 42.0);
  QueryResult g;
  g.groups.push_back(GroupValue{3, 1.0, 1, 0.0});
  g.groups.push_back(GroupValue{5, 2.0, 1, 0.0});
  ASSERT_NE(g.Find(5), nullptr);
  EXPECT_EQ(g.Find(5)->value, 2.0);
  EXPECT_EQ(g.Find(4), nullptr);
}

}  // namespace
}  // namespace deepaqp::aqp
