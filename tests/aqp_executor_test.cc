#include "aqp/executor.h"

#include <gtest/gtest.h>

#include "data/generators.h"

namespace deepaqp::aqp {
namespace {

using relation::AttrType;
using relation::Datum;
using relation::Schema;
using relation::Table;

Table MakeTable() {
  Schema s;
  EXPECT_TRUE(s.AddAttribute("grp", AttrType::kCategorical).ok());
  EXPECT_TRUE(s.AddAttribute("val", AttrType::kNumeric).ok());
  Table t(s);
  // grp 0: values 1, 2, 3; grp 1: values 10, 20.
  t.AppendRow({Datum::Categorical(0), Datum::Numeric(1)});
  t.AppendRow({Datum::Categorical(0), Datum::Numeric(2)});
  t.AppendRow({Datum::Categorical(0), Datum::Numeric(3)});
  t.AppendRow({Datum::Categorical(1), Datum::Numeric(10)});
  t.AppendRow({Datum::Categorical(1), Datum::Numeric(20)});
  return t;
}

TEST(ExecutorTest, ScalarCount) {
  Table t = MakeTable();
  AggregateQuery q;
  q.agg = AggFunc::kCount;
  auto r = ExecuteExact(q, t);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->Scalar(), 5.0);
}

TEST(ExecutorTest, ScalarSumWithFilter) {
  Table t = MakeTable();
  AggregateQuery q;
  q.agg = AggFunc::kSum;
  q.measure_attr = 1;
  q.filter.conditions.push_back({0, CmpOp::kEq, 1.0});
  auto r = ExecuteExact(q, t);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->Scalar(), 30.0);
}

TEST(ExecutorTest, ScalarAvg) {
  Table t = MakeTable();
  AggregateQuery q;
  q.agg = AggFunc::kAvg;
  q.measure_attr = 1;
  q.filter.conditions.push_back({0, CmpOp::kEq, 0.0});
  auto r = ExecuteExact(q, t);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->Scalar(), 2.0);
}

TEST(ExecutorTest, GroupByAvg) {
  Table t = MakeTable();
  AggregateQuery q;
  q.agg = AggFunc::kAvg;
  q.measure_attr = 1;
  q.group_by_attr = 0;
  auto r = ExecuteExact(q, t);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->groups.size(), 2u);
  EXPECT_DOUBLE_EQ(r->Find(0)->value, 2.0);
  EXPECT_DOUBLE_EQ(r->Find(1)->value, 15.0);
  EXPECT_EQ(r->Find(0)->support, 3u);
}

TEST(ExecutorTest, EmptySelectionCountIsZero) {
  Table t = MakeTable();
  AggregateQuery q;
  q.agg = AggFunc::kCount;
  q.filter.conditions.push_back({1, CmpOp::kGt, 1000.0});
  auto r = ExecuteExact(q, t);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->Scalar(), 0.0);
}

TEST(ExecutorTest, EmptySelectionAvgHasNoGroups) {
  Table t = MakeTable();
  AggregateQuery q;
  q.agg = AggFunc::kAvg;
  q.measure_attr = 1;
  q.filter.conditions.push_back({1, CmpOp::kGt, 1000.0});
  auto r = ExecuteExact(q, t);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->groups.empty());
}

TEST(ExecutorTest, DisjunctiveFilter) {
  Table t = MakeTable();
  AggregateQuery q;
  q.agg = AggFunc::kCount;
  q.filter.conjunctive = false;
  q.filter.conditions.push_back({1, CmpOp::kLe, 1.0});   // 1 row
  q.filter.conditions.push_back({1, CmpOp::kGe, 20.0});  // 1 row
  auto r = ExecuteExact(q, t);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->Scalar(), 2.0);
}

TEST(ExecutorTest, ValidationRejectsBadQueries) {
  Table t = MakeTable();
  AggregateQuery sum_on_cat;
  sum_on_cat.agg = AggFunc::kSum;
  sum_on_cat.measure_attr = 0;
  EXPECT_FALSE(ExecuteExact(sum_on_cat, t).ok());

  AggregateQuery group_on_num;
  group_on_num.agg = AggFunc::kCount;
  group_on_num.group_by_attr = 1;
  EXPECT_FALSE(ExecuteExact(group_on_num, t).ok());

  AggregateQuery bad_measure;
  bad_measure.agg = AggFunc::kAvg;
  bad_measure.measure_attr = 9;
  EXPECT_FALSE(ExecuteExact(bad_measure, t).ok());

  AggregateQuery bad_filter;
  bad_filter.agg = AggFunc::kCount;
  bad_filter.filter.conditions.push_back({9, CmpOp::kEq, 0.0});
  EXPECT_FALSE(ExecuteExact(bad_filter, t).ok());
}

TEST(ExecutorTest, SelectivityMatchesManualCount) {
  Table t = MakeTable();
  AggregateQuery q;
  q.filter.conditions.push_back({0, CmpOp::kEq, 0.0});
  EXPECT_DOUBLE_EQ(Selectivity(q, t), 0.6);
  AggregateQuery all;
  EXPECT_DOUBLE_EQ(Selectivity(all, t), 1.0);
}

TEST(ExecutorTest, GroupBySumOnGeneratedData) {
  // Cross-check group-by against scalar per-group queries on real-ish data.
  auto table = data::GenerateTaxi({.rows = 2000, .seed = 99});
  AggregateQuery q;
  q.agg = AggFunc::kSum;
  q.measure_attr = table.schema().IndexOf("fare");
  q.group_by_attr = table.schema().IndexOf("pickup_borough");
  auto grouped = ExecuteExact(q, table);
  ASSERT_TRUE(grouped.ok());
  double total = 0.0;
  for (const auto& g : grouped->groups) {
    AggregateQuery scalar = q;
    scalar.group_by_attr = -1;
    scalar.filter.conditions.push_back(
        {static_cast<size_t>(q.group_by_attr), CmpOp::kEq,
         static_cast<double>(g.group)});
    auto r = ExecuteExact(scalar, table);
    ASSERT_TRUE(r.ok());
    EXPECT_DOUBLE_EQ(r->Scalar(), g.value);
    total += g.value;
  }
  AggregateQuery all = q;
  all.group_by_attr = -1;
  EXPECT_NEAR(ExecuteExact(all, table)->Scalar(), total, 1e-6);
}

}  // namespace
}  // namespace deepaqp::aqp
