#include "ensemble/partitioning.h"

#include <cmath>
#include <numeric>
#include <set>

#include <gtest/gtest.h>

#include "data/generators.h"

namespace deepaqp::ensemble {
namespace {

TEST(GroupByAttributeTest, PartitionsAllRows) {
  auto table = data::GenerateCensus({.rows = 4000, .seed = 1});
  const auto attr =
      static_cast<size_t>(table.schema().IndexOf("marital_status"));
  auto groups = GroupByAttribute(table, attr, 0.05);
  size_t total = 0;
  std::set<size_t> seen;
  for (const auto& g : groups) {
    total += g.rows.size();
    for (size_t r : g.rows) EXPECT_TRUE(seen.insert(r).second);
    // No group below the floor (misc aggregates the small ones).
    EXPECT_GE(g.rows.size(), g.name == "misc" ? 1u : 200u);
  }
  EXPECT_EQ(total, table.num_rows());
}

TEST(GroupByAttributeTest, RespectsMinFractionMerging) {
  auto table = data::GenerateFlights({.rows = 3000, .seed = 2});
  // origin_state is Zipf over 50 states: many tiny groups merge into misc.
  auto groups = GroupByAttribute(table, 0, 0.05);
  EXPECT_LT(groups.size(), 20u);
  EXPECT_EQ(groups.back().name, "misc");
}

TEST(HierarchyTest, BalancedShapeAndLeaves) {
  Hierarchy h = MakeBalancedHierarchy(5);
  auto leaves = h.LeavesUnder(h.root);
  ASSERT_EQ(leaves.size(), 5u);
  for (int g = 0; g < 5; ++g) EXPECT_EQ(leaves[g], g);
  // Root must be internal with 2 children for > 1 leaf.
  EXPECT_EQ(h.nodes[h.root].children.size(), 2u);
}

TEST(HierarchyTest, SingleLeaf) {
  Hierarchy h = MakeBalancedHierarchy(1);
  auto leaves = h.LeavesUnder(h.root);
  ASSERT_EQ(leaves.size(), 1u);
  EXPECT_EQ(leaves[0], 0);
}

/// Analytic score: per-group "loss" values; a merged node costs the max of
/// member losses times a heterogeneity penalty based on spread. This makes
/// specific cuts strictly optimal so the DP can be verified exactly.
NodeScoreFn SpreadScore(std::vector<double> leaf_values) {
  return [leaf_values](const std::vector<int>& groups) {
    double lo = 1e18, hi = -1e18;
    for (int g : groups) {
      lo = std::min(lo, leaf_values[g]);
      hi = std::max(hi, leaf_values[g]);
    }
    return 1.0 + (hi - lo);
  };
}

TEST(HierarchyDpTest, KOneIsRootScore) {
  Hierarchy h = MakeBalancedHierarchy(4);
  auto score = SpreadScore({0, 0, 10, 10});
  auto part = PartitionHierarchyDp(h, score, 1);
  ASSERT_TRUE(part.ok());
  ASSERT_EQ(part->parts.size(), 1u);
  EXPECT_DOUBLE_EQ(part->total_score, 11.0);
}

TEST(HierarchyDpTest, FindsTheNaturalSplit) {
  // Leaves {0,0,10,10}: splitting into {0,1} and {2,3} costs 1 + 1 = 2,
  // far below the unsplit 11 or any other 2-cut.
  Hierarchy h = MakeBalancedHierarchy(4);
  auto score = SpreadScore({0, 0, 10, 10});
  auto part = PartitionHierarchyDp(h, score, 2);
  ASSERT_TRUE(part.ok());
  ASSERT_EQ(part->parts.size(), 2u);
  EXPECT_DOUBLE_EQ(part->total_score, 2.0);
  EXPECT_EQ(part->parts[0], (std::vector<int>{0, 1}));
  EXPECT_EQ(part->parts[1], (std::vector<int>{2, 3}));
}

TEST(HierarchyDpTest, DoesNotOverSplitWhenUnhelpful) {
  // Homogeneous leaves: every split adds 1.0 of cost, so K=4 budget should
  // still produce a single part.
  Hierarchy h = MakeBalancedHierarchy(4);
  auto score = SpreadScore({5, 5, 5, 5});
  auto part = PartitionHierarchyDp(h, score, 4);
  ASSERT_TRUE(part.ok());
  EXPECT_EQ(part->parts.size(), 1u);
  EXPECT_DOUBLE_EQ(part->total_score, 1.0);
}

TEST(HierarchyDpTest, PartsCoverAllLeavesExactlyOnce) {
  Hierarchy h = MakeBalancedHierarchy(9);
  auto score = SpreadScore({1, 9, 2, 8, 3, 7, 4, 6, 5});
  for (int k = 1; k <= 5; ++k) {
    auto part = PartitionHierarchyDp(h, score, k);
    ASSERT_TRUE(part.ok());
    std::set<int> seen;
    for (const auto& p : part->parts) {
      for (int g : p) EXPECT_TRUE(seen.insert(g).second);
    }
    EXPECT_EQ(seen.size(), 9u);
    EXPECT_LE(part->parts.size(), static_cast<size_t>(k));
  }
}

TEST(HierarchyDpTest, MonotoneInK) {
  Hierarchy h = MakeBalancedHierarchy(8);
  auto score = SpreadScore({0, 4, 1, 9, 2, 7, 3, 8});
  double prev = 1e18;
  for (int k = 1; k <= 8; ++k) {
    auto part = PartitionHierarchyDp(h, score, k);
    ASSERT_TRUE(part.ok());
    EXPECT_LE(part->total_score, prev + 1e-9);
    prev = part->total_score;
  }
}

TEST(HierarchyDpTest, BeatsOrMatchesGreedy) {
  // Property: the DP optimum is never worse than the greedy cut (Fig. 10).
  util::Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> values(8);
    for (auto& v : values) v = rng.Uniform(0, 10);
    Hierarchy h = MakeBalancedHierarchy(8);
    auto score = SpreadScore(values);
    for (int k : {2, 3, 4}) {
      auto dp = PartitionHierarchyDp(h, score, k);
      auto greedy = PartitionHierarchyGreedy(h, score, k);
      ASSERT_TRUE(dp.ok());
      ASSERT_TRUE(greedy.ok());
      EXPECT_LE(dp->total_score, greedy->total_score + 1e-9);
    }
  }
}

TEST(HierarchyGreedyTest, ProducesValidCut) {
  Hierarchy h = MakeBalancedHierarchy(6);
  auto score = SpreadScore({0, 10, 0, 10, 0, 10});
  auto part = PartitionHierarchyGreedy(h, score, 3);
  ASSERT_TRUE(part.ok());
  std::set<int> seen;
  for (const auto& p : part->parts) {
    for (int g : p) EXPECT_TRUE(seen.insert(g).second);
  }
  EXPECT_EQ(seen.size(), 6u);
  EXPECT_LE(part->parts.size(), 3u);
}

TEST(HierarchyDpTest, RejectsBadInputs) {
  Hierarchy bad;
  auto score = SpreadScore({1});
  EXPECT_FALSE(PartitionHierarchyDp(bad, score, 2).ok());
  Hierarchy h = MakeBalancedHierarchy(2);
  EXPECT_FALSE(PartitionHierarchyDp(h, score, 0).ok());
  EXPECT_FALSE(PartitionHierarchyGreedy(h, score, 0).ok());
}

TEST(ContiguousDpTest, FindsObviousBreakpoint) {
  // Groups 0-2 near value 0; groups 3-5 near 100: range score = spread.
  std::vector<double> values = {0, 1, 2, 100, 101, 102};
  auto range_score = [&values](int i, int j) {
    return 1.0 + values[j] - values[i];  // sorted increasing
  };
  auto part = PartitionContiguousDp(6, range_score, 2);
  ASSERT_TRUE(part.ok());
  ASSERT_EQ(part->parts.size(), 2u);
  EXPECT_EQ(part->parts[0], (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(part->parts[1], (std::vector<int>{3, 4, 5}));
  EXPECT_DOUBLE_EQ(part->total_score, 3.0 + 3.0);
}

TEST(ContiguousDpTest, MatchesBruteForceOnSmallInstances) {
  util::Rng rng(11);
  for (int trial = 0; trial < 10; ++trial) {
    const int l = 6;
    std::vector<std::vector<double>> cost(l, std::vector<double>(l));
    for (int i = 0; i < l; ++i) {
      for (int j = i; j < l; ++j) cost[i][j] = rng.Uniform(0.5, 5.0);
    }
    auto range_score = [&cost](int i, int j) { return cost[i][j]; };
    for (int k = 1; k <= 3; ++k) {
      auto part = PartitionContiguousDp(l, range_score, k);
      ASSERT_TRUE(part.ok());
      // Brute force over all compositions into at most k ranges.
      double best = 1e18;
      // Enumerate breakpoint bitmasks over l-1 positions with < k breaks.
      for (uint32_t mask = 0; mask < (1u << (l - 1)); ++mask) {
        if (__builtin_popcount(mask) >= k) continue;
        double total = 0.0;
        int start = 0;
        for (int pos = 0; pos < l; ++pos) {
          const bool end = pos == l - 1 || (mask & (1u << pos));
          if (end) {
            total += cost[start][pos];
            start = pos + 1;
          }
        }
        best = std::min(best, total);
      }
      EXPECT_NEAR(part->total_score, best, 1e-9) << "k=" << k;
    }
  }
}

TEST(ContiguousDpTest, PartsAreContiguousAndComplete) {
  auto part = PartitionContiguousDp(
      10, [](int i, int j) { return 1.0 + (j - i) * 0.1; }, 4);
  ASSERT_TRUE(part.ok());
  int next = 0;
  for (const auto& p : part->parts) {
    for (int g : p) EXPECT_EQ(g, next++);
  }
  EXPECT_EQ(next, 10);
}

TEST(ElbowTest, PicksTheKnee) {
  // Scores: steep drop 100 -> 40 -> 20, then flat.
  EXPECT_EQ(SelectKByElbow({100, 40, 20, 19, 18.5}), 3);
  // No improvement: stay at 1.
  EXPECT_EQ(SelectKByElbow({10, 10, 10}), 1);
  // Monotone strong improvement throughout: use the max K.
  EXPECT_EQ(SelectKByElbow({100, 60, 30, 10}), 4);
  EXPECT_EQ(SelectKByElbow({42}), 1);
}

}  // namespace
}  // namespace deepaqp::ensemble
