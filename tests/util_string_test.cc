#include "util/string_util.h"

#include <gtest/gtest.h>

#include "util/flags.h"

namespace deepaqp::util {
namespace {

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  auto parts = Split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringUtilTest, SplitSingleField) {
  auto parts = Split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(StringUtilTest, JoinInvertsSplit) {
  EXPECT_EQ(Join({"x", "y", "z"}, ","), "x,y,z");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, "--"), "solo");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  hi \t\n"), "hi");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("no-ws"), "no-ws");
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("--flag", "--"));
  EXPECT_FALSE(StartsWith("-", "--"));
  EXPECT_TRUE(StartsWith("abc", ""));
}

TEST(StringUtilTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(-0.5, 1), "-0.5");
}

TEST(StringUtilTest, ParseDouble) {
  double v = 0;
  EXPECT_TRUE(ParseDouble("2.5", &v));
  EXPECT_EQ(v, 2.5);
  EXPECT_TRUE(ParseDouble("-1e3", &v));
  EXPECT_EQ(v, -1000.0);
  EXPECT_FALSE(ParseDouble("abc", &v));
  EXPECT_FALSE(ParseDouble("1.5x", &v));
}

TEST(StringUtilTest, ParseDoubleRejectsOutOfRange) {
  // strtod reports ERANGE for values outside the double range; accepting
  // them would silently turn "1e999" into +inf downstream (flag parsing,
  // CSV ingest). Underflow-to-zero of tiny denormals stays accepted —
  // ERANGE only rejects when no finite representation exists at all.
  double v = 0;
  EXPECT_FALSE(ParseDouble("1e999", &v));
  EXPECT_FALSE(ParseDouble("-1e999", &v));
  EXPECT_TRUE(ParseDouble("1e308", &v));
  EXPECT_EQ(v, 1e308);
}

TEST(StringUtilTest, ParseInt64) {
  int64_t v = 0;
  EXPECT_TRUE(ParseInt64("-42", &v));
  EXPECT_EQ(v, -42);
  EXPECT_FALSE(ParseInt64("4.2", &v));
  EXPECT_FALSE(ParseInt64("", &v));
}

TEST(StringUtilTest, ParseInt64RejectsOutOfRange) {
  // strtoll clamps to LLONG_MIN/MAX and sets ERANGE; before the errno
  // check, "9223372036854775808" parsed "successfully" as LLONG_MAX.
  int64_t v = 0;
  EXPECT_TRUE(ParseInt64("9223372036854775807", &v));
  EXPECT_EQ(v, INT64_MAX);
  EXPECT_FALSE(ParseInt64("9223372036854775808", &v));
  EXPECT_TRUE(ParseInt64("-9223372036854775808", &v));
  EXPECT_EQ(v, INT64_MIN);
  EXPECT_FALSE(ParseInt64("-9223372036854775809", &v));
}

TEST(FlagsTest, ParsesEqualsAndSpaceForms) {
  const char* argv[] = {"prog", "--rows=100", "--name", "census",
                        "--verbose"};
  Flags flags(5, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetInt("rows", 0), 100);
  EXPECT_EQ(flags.GetString("name", ""), "census");
  EXPECT_TRUE(flags.GetBool("verbose", false));
  EXPECT_EQ(flags.GetInt("missing", 7), 7);
  EXPECT_FALSE(flags.Has("missing"));
}

TEST(FlagsTest, LaterOccurrenceWins) {
  const char* argv[] = {"prog", "--t=1", "--t=2"};
  Flags flags(3, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetInt("t", 0), 2);
}

TEST(FlagsTest, DoubleParsing) {
  const char* argv[] = {"prog", "--frac=0.25"};
  Flags flags(2, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetDouble("frac", 0.0), 0.25);
}

}  // namespace
}  // namespace deepaqp::util
