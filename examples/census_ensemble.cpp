// Multi-VAE ensembles (paper Sec. V): partition a census relation into
// atomic groups, score candidate partitions with R-ELBO, pick the optimal
// K-way partition with the hierarchy DP (vs. the greedy baseline), train
// one VAE per part, and compare single-model vs. ensemble accuracy.
//
//   ./census_ensemble [--rows 12000] [--epochs 10] [--k 3] [--queries 40]

#include <cstdio>

#include "aqp/evaluation.h"
#include "aqp/metrics.h"
#include "data/generators.h"
#include "data/workload.h"
#include "ensemble/ensemble_model.h"
#include "ensemble/partitioning.h"
#include "util/flags.h"
#include "util/thread_pool.h"
#include "vae/vae_model.h"

using namespace deepaqp;  // NOLINT: example brevity

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  util::ApplyThreadsFlag(flags);
  const auto rows = static_cast<size_t>(flags.GetInt("rows", 12000));
  const int epochs = static_cast<int>(flags.GetInt("epochs", 10));
  const int k = static_cast<int>(flags.GetInt("k", 3));
  const auto num_queries = static_cast<size_t>(flags.GetInt("queries", 40));

  relation::Table table = data::GenerateCensus({.rows = rows, .seed = 5});
  const auto attr =
      static_cast<size_t>(table.schema().IndexOf("marital_status"));
  auto groups = ensemble::GroupByAttribute(table, attr, 0.05);
  std::printf("Partitioning by marital_status: %zu atomic groups\n",
              groups.size());

  vae::VaeAqpOptions vae_options;
  vae_options.epochs = epochs;
  vae_options.hidden_dim = 48;

  // Score function: train a small probe VAE on the candidate part and
  // report its R-ELBO loss (lower = better fit). Scores are memoized by the
  // partitioning algorithms.
  vae::VaeAqpOptions probe = vae_options;
  probe.epochs = std::max(3, epochs / 2);
  auto score = [&](const std::vector<int>& part) {
    std::vector<size_t> part_rows;
    for (int g : part) {
      part_rows.insert(part_rows.end(), groups[g].rows.begin(),
                       groups[g].rows.end());
    }
    relation::Table part_table = table.Gather(part_rows);
    auto model = vae::VaeAqpModel::Train(part_table, probe);
    if (!model.ok()) return 1e9;
    util::Rng rng(123);
    return (*model)->RElboLoss(part_table, 0.0, rng, 512);
  };

  auto hierarchy =
      ensemble::MakeBalancedHierarchy(static_cast<int>(groups.size()));
  std::printf("Scoring hierarchy nodes and solving the K=%d tree-cut...\n",
              k);
  auto dp = ensemble::PartitionHierarchyDp(hierarchy, score, k);
  auto greedy = ensemble::PartitionHierarchyGreedy(hierarchy, score, k);
  if (!dp.ok() || !greedy.ok()) {
    std::fprintf(stderr, "partitioning failed\n");
    return 1;
  }
  std::printf("  DP cut:     %zu parts, total R-ELBO %.3f\n",
              dp->parts.size(), dp->total_score);
  std::printf("  greedy cut: %zu parts, total R-ELBO %.3f\n\n",
              greedy->parts.size(), greedy->total_score);

  // Train the competitors: one big VAE vs. the DP-partitioned ensemble at
  // matched cumulative capacity.
  data::WorkloadConfig wcfg;
  wcfg.num_queries = num_queries;
  auto workload = data::GenerateWorkload(table, wcfg);
  aqp::EvalOptions eopts;
  eopts.num_trials = 3;

  vae::VaeAqpOptions single_options = vae_options;
  single_options.hidden_dim =
      vae_options.hidden_dim * static_cast<size_t>(dp->parts.size());
  std::printf("Training single VAE (hidden %zu)...\n",
              single_options.hidden_dim);
  auto single = vae::VaeAqpModel::Train(table, single_options);
  if (!single.ok()) return 1;
  auto red_single = aqp::RelativeErrorDifferences(
      workload, table, (*single)->MakeSampler((*single)->default_t()),
      eopts);

  std::printf("Training %zu-member ensemble (hidden %zu each)...\n",
              dp->parts.size(), vae_options.hidden_dim);
  auto ens = ensemble::EnsembleModel::Train(table, groups, *dp, vae_options);
  if (!ens.ok()) return 1;
  auto red_ens = aqp::RelativeErrorDifferences(
      workload, table, (*ens)->MakeSampler(vae::kTPlusInf), eopts);

  if (red_single.ok() && red_ens.ok()) {
    const auto s1 = aqp::DistributionSummary::FromValues(*red_single);
    const auto s2 = aqp::DistributionSummary::FromValues(*red_ens);
    std::printf("\nRelative error difference over %zu queries:\n",
                workload.size());
    std::printf("  single VAE:  median %.4f  p75 %.4f  (%.0f KB)\n",
                s1.median, s1.p75, (*single)->ModelSizeBytes() / 1024.0);
    std::printf("  ensemble:    median %.4f  p75 %.4f  (%.0f KB)\n",
                s2.median, s2.p75, (*ens)->ModelSizeBytes() / 1024.0);
  }
  return 0;
}
