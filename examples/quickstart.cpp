// Quickstart: train a VAE AQP model on a small relation, generate synthetic
// samples, and answer aggregate queries client-side.
//
//   ./quickstart [--rows 10000] [--epochs 15] [--sample_frac 0.01]

#include <cstdio>

#include "aqp/estimator.h"
#include "aqp/executor.h"
#include "aqp/metrics.h"
#include "data/generators.h"
#include "util/flags.h"
#include "util/thread_pool.h"
#include "util/timer.h"
#include "vae/vae_model.h"

using namespace deepaqp;  // NOLINT: example brevity

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  util::ApplyThreadsFlag(flags);
  const auto rows = static_cast<size_t>(flags.GetInt("rows", 10000));
  const int epochs = static_cast<int>(flags.GetInt("epochs", 15));
  const double sample_frac = flags.GetDouble("sample_frac", 0.01);

  // 1. The "server side": a relation we want to explore.
  std::printf("Generating %zu taxi trips...\n", rows);
  relation::Table table = data::GenerateTaxi({.rows = rows, .seed = 7});

  // 2. Train the deep generative model (paper Sec. IV).
  vae::VaeAqpOptions options;
  options.epochs = epochs;
  std::printf("Training VAE (%d epochs)...\n", epochs);
  util::Stopwatch train_watch;
  auto model_or = vae::VaeAqpModel::Train(table, options);
  if (!model_or.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 model_or.status().ToString().c_str());
    return 1;
  }
  auto model = std::move(model_or).value();
  std::printf("Trained in %.1fs; model size %.1f KB (data: %.1f KB)\n",
              train_watch.ElapsedSeconds(),
              model->ModelSizeBytes() / 1024.0,
              rows * 7 * sizeof(double) / 1024.0);

  // 3. The "client side": generate synthetic samples locally and answer
  //    queries with classic sample-based AQP.
  const auto sample_rows = static_cast<size_t>(sample_frac * rows);
  util::Rng rng(42);
  util::Stopwatch sample_watch;
  relation::Table sample = model->Generate(sample_rows, rng);
  std::printf("Generated %zu synthetic tuples in %.0f ms (T = %.2f)\n\n",
              sample.num_rows(), sample_watch.ElapsedMillis(),
              model->default_t());

  // A few exploration queries.
  const relation::Schema& schema = table.schema();
  std::vector<aqp::AggregateQuery> queries(3);
  queries[0].agg = aqp::AggFunc::kAvg;  // average fare overall
  queries[0].measure_attr = schema.IndexOf("fare");

  queries[1].agg = aqp::AggFunc::kCount;  // Manhattan pickups
  queries[1].filter.conditions.push_back(
      {static_cast<size_t>(schema.IndexOf("pickup_borough")),
       aqp::CmpOp::kEq, 0.0});

  queries[2].agg = aqp::AggFunc::kAvg;  // long-trip duration
  queries[2].measure_attr = schema.IndexOf("duration_min");
  queries[2].filter.conditions.push_back(
      {static_cast<size_t>(schema.IndexOf("trip_distance")),
       aqp::CmpOp::kGt, 5.0});

  std::printf("%-60s %12s %12s %8s\n", "query", "exact", "estimate",
              "rel.err");
  for (const auto& q : queries) {
    const double exact = aqp::ExecuteExact(q, table)->Scalar();
    auto est = aqp::EstimateFromSample(q, sample, table.num_rows());
    const double approx = est->Scalar();
    std::printf("%-60s %12.2f %12.2f %7.2f%%\n",
                q.ToString(schema).c_str(), exact, approx,
                100.0 * aqp::RelativeError(approx, exact));
  }
  return 0;
}
