// The paper's introductory case study: interactive exploration of a taxi
// dataset entirely on the client. The server trains and ships a few-hundred-
// KB model; the client then answers ad-hoc aggregates — including the
// paper's examples "average passengers on trips starting from Manhattan"
// and "average trip duration grouped by hour" — without contacting the
// server again.
//
//   ./taxi_exploration [--rows 20000] [--epochs 20] [--sample_frac 0.02]

#include <cstdio>

#include "aqp/estimator.h"
#include "aqp/executor.h"
#include "aqp/metrics.h"
#include "data/generators.h"
#include "util/flags.h"
#include "util/thread_pool.h"
#include "vae/vae_model.h"

using namespace deepaqp;  // NOLINT: example brevity

namespace {

void PrintGroupBy(const relation::Table& table,
                  const relation::Table& sample,
                  const aqp::AggregateQuery& query) {
  auto exact = aqp::ExecuteExact(query, table);
  auto est = aqp::EstimateFromSample(query, sample, table.num_rows());
  std::printf("%s\n", query.ToString(table.schema()).c_str());
  std::printf("  %-10s %10s %10s %12s\n", "group", "exact", "estimate",
              "95%-CI");
  const auto gattr = static_cast<size_t>(query.group_by_attr);
  for (const auto& g : exact->groups) {
    const aqp::GroupValue* e = est->Find(g.group);
    const std::string label =
        table.dict(gattr).size() > g.group
            ? table.dict(gattr).LabelOf(g.group)
            : std::to_string(g.group);
    if (e == nullptr) {
      std::printf("  %-10s %10.2f %10s %12s\n", label.c_str(), g.value,
                  "missing", "");
    } else {
      std::printf("  %-10s %10.2f %10.2f %11.2f\n", label.c_str(), g.value,
                  e->value, e->ci_half_width);
    }
  }
  std::printf("  group-by avg rel err: %.2f%%\n\n",
              100.0 * aqp::ResultRelativeError(*est, *exact));
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  util::ApplyThreadsFlag(flags);
  const auto rows = static_cast<size_t>(flags.GetInt("rows", 20000));
  const int epochs = static_cast<int>(flags.GetInt("epochs", 20));
  const double sample_frac = flags.GetDouble("sample_frac", 0.02);

  relation::Table table = data::GenerateTaxi({.rows = rows, .seed = 11});
  const relation::Schema& schema = table.schema();

  vae::VaeAqpOptions options;
  options.epochs = epochs;
  std::printf("Training the exploration model on %zu trips...\n", rows);
  auto model = vae::VaeAqpModel::Train(table, options);
  if (!model.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 model.status().ToString().c_str());
    return 1;
  }
  std::printf("Shipping %.1f KB to the client.\n\n",
              (*model)->ModelSizeBytes() / 1024.0);

  util::Rng rng(17);
  relation::Table sample =
      (*model)->Generate(static_cast<size_t>(sample_frac * rows), rng);

  // Q1: average passengers on trips starting from Manhattan.
  aqp::AggregateQuery q1;
  q1.agg = aqp::AggFunc::kAvg;
  q1.measure_attr = schema.IndexOf("passengers");
  q1.filter.conditions.push_back(
      {static_cast<size_t>(schema.IndexOf("pickup_borough")),
       aqp::CmpOp::kEq, 0.0});
  const double exact1 = aqp::ExecuteExact(q1, table)->Scalar();
  auto est1 = aqp::EstimateFromSample(q1, sample, table.num_rows());
  std::printf("%s\n  exact %.3f | estimate %.3f +- %.3f (err %.2f%%)\n\n",
              q1.ToString(schema).c_str(), exact1, est1->Scalar(),
              est1->groups[0].ci_half_width,
              100.0 * aqp::RelativeError(est1->Scalar(), exact1));

  // Q2: average trip duration grouped by payment type (small groups table).
  aqp::AggregateQuery q2;
  q2.agg = aqp::AggFunc::kAvg;
  q2.measure_attr = schema.IndexOf("duration_min");
  q2.group_by_attr = schema.IndexOf("payment_type");
  PrintGroupBy(table, sample, q2);

  // Q3: rush-hour fares by borough (correlated filter + group-by).
  aqp::AggregateQuery q3;
  q3.agg = aqp::AggFunc::kAvg;
  q3.measure_attr = schema.IndexOf("fare");
  q3.group_by_attr = schema.IndexOf("pickup_borough");
  q3.filter.conditions.push_back(
      {static_cast<size_t>(schema.IndexOf("trip_distance")),
       aqp::CmpOp::kGt, 2.0});
  PrintGroupBy(table, sample, q3);

  // Q4: the client needs more precision -> just generate more samples
  // locally (the paper's "as many samples as needed" property).
  aqp::AggregateQuery q4;
  q4.agg = aqp::AggFunc::kCount;
  q4.filter.conditions.push_back(
      {static_cast<size_t>(schema.IndexOf("passengers")),
       aqp::CmpOp::kGe, 4.0});
  const double exact4 = aqp::ExecuteExact(q4, table)->Scalar();
  std::printf("%s (exact %.0f)\n", q4.ToString(schema).c_str(), exact4);
  for (size_t mult : {1, 4, 16}) {
    relation::Table big =
        (*model)->Generate(sample.num_rows() * mult, rng);
    auto est = aqp::EstimateFromSample(q4, big, table.num_rows());
    std::printf("  %6zu samples: estimate %10.0f +- %8.0f\n",
                big.num_rows(), est->Scalar(),
                est->groups[0].ci_half_width);
  }
  return 0;
}
