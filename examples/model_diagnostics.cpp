// Model-bias diagnostics (paper Sec. IV-B to IV-D): train a VAE, run the
// cross-match hypothesis test in latent space, drive the Algorithm-1 loop
// that lowers the rejection threshold T until the test passes, sweep T to
// show the accuracy/cost trade-off, and round-trip the model through disk.
//
//   ./model_diagnostics [--rows 8000] [--epochs 15]

#include <cmath>
#include <cstdio>

#include "aqp/evaluation.h"
#include "aqp/metrics.h"
#include "data/generators.h"
#include "data/workload.h"
#include "util/flags.h"
#include "util/thread_pool.h"
#include "util/serialize.h"
#include "util/timer.h"
#include "vae/vae_model.h"
#include "vae/workflow.h"

using namespace deepaqp;  // NOLINT: example brevity

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  util::ApplyThreadsFlag(flags);
  const auto rows = static_cast<size_t>(flags.GetInt("rows", 8000));
  const int epochs = static_cast<int>(flags.GetInt("epochs", 15));

  relation::Table table = data::GenerateCensus({.rows = rows, .seed = 9});
  vae::VaeAqpOptions options;
  options.epochs = epochs;
  std::printf("Training VAE on %zu census tuples...\n", rows);
  auto model = vae::VaeAqpModel::Train(table, options);
  if (!model.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 model.status().ToString().c_str());
    return 1;
  }
  std::printf("Calibrated default T = %.3f\n\n", (*model)->default_t());

  // Algorithm 1: cross-match test; lower T until the model sample is
  // indistinguishable from a real sample in latent space.
  vae::BiasEliminationOptions bias_options;
  bias_options.test_points = 96;
  bias_options.max_iterations = 5;
  auto loop = vae::EliminateModelBias(**model, table, bias_options);
  if (!loop.ok()) {
    std::fprintf(stderr, "bias loop failed: %s\n",
                 loop.status().ToString().c_str());
    return 1;
  }
  std::printf("Algorithm 1 (cross-match driven T selection):\n");
  double t_iter = bias_options.initial_t;
  for (const auto& test : loop->tests) {
    std::printf(
        "  T=%6.1f  a_DM=%3d (E[a_DM]=%5.1f)  p=%.4f  -> %s\n", t_iter,
        test.a_dm, test.expected_a_dm, test.p_value,
        test.Reject(bias_options.alpha) ? "reject, lower T" : "pass");
    t_iter -= bias_options.t_step;
  }
  std::printf("  final T = %.1f (%s after %d iteration(s))\n\n",
              loop->final_t, loop->passed ? "passed" : "budget exhausted",
              loop->iterations);

  // T sweep: sample quality vs. generation cost (Figs. 8 and 13 in-vitro).
  data::WorkloadConfig wcfg;
  wcfg.num_queries = 25;
  auto workload = data::GenerateWorkload(table, wcfg);
  aqp::EvalOptions eopts;
  eopts.num_trials = 3;
  // The sweep is centered on the calibrated threshold: the log-ratio scale
  // is dataset-specific, so "T = 0" in the paper corresponds to the
  // calibrated operating point here, with +-10 moving toward accept-all /
  // reject-most.
  const double t0 = (*model)->default_t();
  std::printf("%10s %14s %16s\n", "T offset", "median RED",
              "sampling ms/1k");
  for (double delta : {vae::kTMinusInf, -10.0, 0.0, 10.0, vae::kTPlusInf}) {
    const double t = std::isfinite(delta) ? t0 + delta : delta;
    util::Stopwatch watch;
    util::Rng rng(33);
    (*model)->Generate(1000, t, rng);
    const double ms = watch.ElapsedMillis();
    auto red = aqp::RelativeErrorDifferences(
        workload, table, (*model)->MakeSampler(t), eopts);
    const double median =
        red.ok() ? aqp::DistributionSummary::FromValues(*red).median : -1;
    std::printf("%10.1f %14.4f %16.1f\n", delta, median, ms);
  }

  // Persistence round trip: the shipped artifact.
  const std::string path = "/tmp/deepaqp_model.bin";
  auto bytes = (*model)->Serialize();
  if (!util::WriteFile(path, bytes).ok()) return 1;
  auto loaded_bytes = util::ReadFile(path);
  auto reloaded = vae::VaeAqpModel::Deserialize(*loaded_bytes);
  std::printf("\nModel persisted to %s (%.1f KB) and reloaded: %s\n",
              path.c_str(), bytes.size() / 1024.0,
              reloaded.ok() ? "OK" : "FAILED");
  return reloaded.ok() ? 0 : 1;
}
