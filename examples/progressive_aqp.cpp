// Progressive (online) AQP on top of the generative model: stream synthetic
// sample batches into an OnlineAggregator until the confidence interval is
// tight enough (Sec. VII: "our model based approach could be easily
// retrofitted into online aggregation systems"), then drill down with
// conditional generation and quantify error with the bootstrap.
//
//   ./progressive_aqp [--rows 15000] [--epochs 15] [--target_ci 0.02]

#include <cstdio>

#include "aqp/bootstrap.h"
#include "aqp/estimator.h"
#include "aqp/executor.h"
#include "aqp/metrics.h"
#include "aqp/online.h"
#include "data/generators.h"
#include "util/flags.h"
#include "util/thread_pool.h"
#include "vae/vae_model.h"

using namespace deepaqp;  // NOLINT: example brevity

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  util::ApplyThreadsFlag(flags);
  const auto rows = static_cast<size_t>(flags.GetInt("rows", 15000));
  const int epochs = static_cast<int>(flags.GetInt("epochs", 15));
  const double target_ci = flags.GetDouble("target_ci", 0.02);

  relation::Table table = data::GenerateCensus({.rows = rows, .seed = 19});
  const relation::Schema& schema = table.schema();

  vae::VaeAqpOptions options;
  options.epochs = epochs;
  std::printf("Training on %zu census tuples...\n", rows);
  auto model = vae::VaeAqpModel::Train(table, options);
  if (!model.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 model.status().ToString().c_str());
    return 1;
  }

  // Progressive refinement: the user watches the estimate tighten and can
  // stop at any time; here we stop at a +-2% relative CI.
  aqp::AggregateQuery q;
  q.agg = aqp::AggFunc::kAvg;
  q.measure_attr = schema.IndexOf("hours_per_week");
  q.filter.conditions.push_back(
      {static_cast<size_t>(schema.IndexOf("sex")), aqp::CmpOp::kEq, 0.0});
  const double truth = aqp::ExecuteExact(q, table)->Scalar();
  std::printf("\n%s (exact %.3f)\n", q.ToString(schema).c_str(), truth);

  aqp::OnlineAggregator agg(q, table.num_rows());
  util::Rng rng(23);
  int batch_no = 0;
  while (!agg.Converged(target_ci) && batch_no < 200) {
    relation::Table batch = (*model)->Generate(250, rng);
    if (!agg.AddBatch(batch).ok()) return 1;
    ++batch_no;
    if (batch_no <= 5 || batch_no % 20 == 0) {
      auto cur = agg.Current();
      std::printf("  after %5zu tuples: %.3f +- %.3f\n",
                  agg.tuples_seen(), cur->Scalar(),
                  cur->groups[0].ci_half_width);
    }
  }
  auto final_est = agg.Current();
  std::printf("  converged at %zu tuples: %.3f +- %.3f (err %.2f%%)\n",
              agg.tuples_seen(), final_est->Scalar(),
              final_est->groups[0].ci_half_width,
              100.0 * aqp::RelativeError(final_est->Scalar(), truth));

  // Drill-down with conditional generation: rare sub-population (the
  // paper's "aggregates over rare sub-populations" use case).
  aqp::Predicate rare;
  rare.conditions.push_back(
      {static_cast<size_t>(schema.IndexOf("age")), aqp::CmpOp::kGe, 60.0});
  rare.conditions.push_back(
      {static_cast<size_t>(schema.IndexOf("workclass")), aqp::CmpOp::kGe,
       6.0});
  std::printf("\nConditional generation: age >= 60 AND workclass >= 6\n");
  relation::Table rare_sample =
      (*model)->GenerateWhere(400, rare, (*model)->default_t(), rng);
  std::printf("  got %zu conditional tuples\n", rare_sample.num_rows());
  if (rare_sample.num_rows() >= 30) {
    aqp::AggregateQuery rare_q;
    rare_q.agg = aqp::AggFunc::kAvg;
    rare_q.measure_attr = schema.IndexOf("hours_per_week");
    aqp::AggregateQuery rare_exact = rare_q;
    rare_exact.filter = rare;
    auto exact = aqp::ExecuteExact(rare_exact, table);
    auto est = aqp::ExecuteExact(rare_q, rare_sample);
    if (exact.ok() && est.ok() && !exact->groups.empty()) {
      std::printf("  AVG(hours) in sub-population: exact %.2f | "
                  "conditional-sample %.2f\n",
                  exact->Scalar(), est->Scalar());
    }
  }

  // Bootstrap CIs on a model sample vs the CLT interval.
  std::printf("\nBootstrap vs CLT interval on a 500-tuple model sample\n");
  relation::Table sample = (*model)->Generate(500, rng);
  aqp::AggregateQuery sum_q;
  sum_q.agg = aqp::AggFunc::kSum;
  sum_q.measure_attr = schema.IndexOf("capital_gain");
  auto plain = aqp::EstimateFromSample(sum_q, sample, table.num_rows());
  auto boot = aqp::BootstrapEstimate(sum_q, sample, table.num_rows(), {});
  if (plain.ok() && boot.ok()) {
    std::printf("  CLT:       %.3g +- %.3g\n", plain->Scalar(),
                plain->groups[0].ci_half_width);
    std::printf("  bootstrap: %.3g +- %.3g\n", boot->Scalar(),
                boot->groups[0].ci_half_width);
  }
  return 0;
}
